#include "sim/runtime_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::sim {

namespace {

std::string exact_key_string(const std::vector<std::uint64_t>& key) {
  std::string s;
  for (std::uint64_t v : key) {
    s += std::to_string(v);
    s += '|';
  }
  return s;
}

}  // namespace

RuntimeTable::RuntimeTable(const p4ir::Table& def) : def_(&def) {
  if (def.needs_tcam()) {
    tcam_.emplace(def.keys.size());
  }
}

void RuntimeTable::add_exact(const std::vector<std::uint64_t>& key,
                             ActionCall action, EpochWindow window) {
  if (tcam_) {
    throw std::invalid_argument("table '" + def_->name +
                                "' is ternary/LPM; use add_ternary/add_lpm");
  }
  if (key.size() != def_->keys.size()) {
    throw std::invalid_argument("key arity mismatch for table '" +
                                def_->name + "'");
  }
  if (!window.well_formed()) {
    throw std::invalid_argument("malformed epoch window for table '" +
                                def_->name + "'");
  }
  const std::string key_string = exact_key_string(key);
  auto it = exact_.find(key_string);
  if (it != exact_.end()) {
    for (ExactEntry& version : it->second) {
      if (version.window == window) {
        version.action = std::move(action);  // reinstall overwrites
        ++revision_;
        return;
      }
      if (version.window.overlaps(window)) {
        throw std::invalid_argument(
            "overlapping epoch window for key in table '" + def_->name +
            "' (a packet could see two generations)");
      }
    }
  }
  if (size_ >= def_->max_entries) {
    throw std::invalid_argument("table '" + def_->name + "' is full (" +
                                std::to_string(def_->max_entries) + ")");
  }
  exact_[key_string].push_back(ExactEntry{key, std::move(action), window});
  ++size_;
  ++revision_;
}

std::size_t RuntimeTable::add_ternary(const std::vector<net::TernaryField>& key,
                                      std::int32_t priority, ActionCall action,
                                      EpochWindow window) {
  if (!tcam_) {
    throw std::invalid_argument("table '" + def_->name +
                                "' is exact; use add_exact");
  }
  if (!window.well_formed()) {
    throw std::invalid_argument("malformed epoch window for table '" +
                                def_->name + "'");
  }
  if (size_ >= def_->max_entries) {
    throw std::invalid_argument("table '" + def_->name + "' is full");
  }
  for (const auto& e : tcam_->entries()) {
    if (e.key == key && e.priority == priority &&
        ternary_window(e.handle).overlaps(window)) {
      throw std::invalid_argument(
          "overlapping epoch window for ternary entry in table '" +
          def_->name + "'");
    }
  }
  const std::size_t handle = tcam_->insert(key, priority, std::move(action));
  if (!window.is_default()) ternary_windows_[handle] = window;
  ++size_;
  ++revision_;
  return handle;
}

std::vector<net::TernaryField> RuntimeTable::lpm_key(
    std::uint64_t value, std::uint8_t prefix_len) const {
  if (!tcam_) {
    throw std::invalid_argument("table '" + def_->name +
                                "' is exact; use add_exact");
  }
  // Find the LPM component; other components become full wildcards.
  std::vector<net::TernaryField> key(def_->keys.size());
  bool found = false;
  for (std::size_t i = 0; i < def_->keys.size(); ++i) {
    if (def_->keys[i].kind == p4ir::MatchKind::kLpm) {
      const std::uint16_t bits = def_->keys[i].bits;
      if (prefix_len > bits) {
        throw std::invalid_argument("prefix length exceeds key width");
      }
      std::uint64_t mask =
          prefix_len == 0
              ? 0
              : (~std::uint64_t{0} << (bits - prefix_len)) &
                    (bits >= 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << bits) - 1));
      key[i] = net::TernaryField{value & mask, mask};
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("table '" + def_->name +
                                "' has no LPM key component");
  }
  return key;
}

std::size_t RuntimeTable::add_lpm(std::uint64_t value, std::uint8_t prefix_len,
                                  ActionCall action, EpochWindow window) {
  return add_ternary(lpm_key(value, prefix_len), prefix_len,
                     std::move(action), window);
}

bool RuntimeTable::remove_exact(const std::vector<std::uint64_t>& key) {
  if (tcam_) return false;
  auto it = exact_.find(exact_key_string(key));
  if (it == exact_.end()) return false;
  auto vit = std::find_if(it->second.begin(), it->second.end(),
                          [](const ExactEntry& e) { return e.window.open(); });
  if (vit == it->second.end()) return false;
  it->second.erase(vit);
  if (it->second.empty()) exact_.erase(it);
  --size_;
  ++revision_;
  return true;
}

bool RuntimeTable::remove_exact_version(const std::vector<std::uint64_t>& key,
                                        EpochWindow window) {
  if (tcam_) return false;
  auto it = exact_.find(exact_key_string(key));
  if (it == exact_.end()) return false;
  auto vit =
      std::find_if(it->second.begin(), it->second.end(),
                   [&](const ExactEntry& e) { return e.window == window; });
  if (vit == it->second.end()) return false;
  it->second.erase(vit);
  if (it->second.empty()) exact_.erase(it);
  --size_;
  ++revision_;
  return true;
}

bool RuntimeTable::retire_exact(const std::vector<std::uint64_t>& key,
                                std::uint32_t last_epoch) {
  if (tcam_) return false;
  auto it = exact_.find(exact_key_string(key));
  if (it == exact_.end()) return false;
  for (ExactEntry& version : it->second) {
    if (version.window.open()) {
      if (last_epoch < version.window.from) return false;
      version.window.to = last_epoch;
      ++revision_;
      return true;
    }
  }
  return false;
}

bool RuntimeTable::unretire_exact(const std::vector<std::uint64_t>& key,
                                  std::uint32_t last_epoch) {
  if (tcam_) return false;
  auto it = exact_.find(exact_key_string(key));
  if (it == exact_.end()) return false;
  for (ExactEntry& version : it->second) {
    if (version.window.to != last_epoch) continue;
    const EpochWindow reopened{version.window.from, kEpochOpen};
    for (const ExactEntry& other : it->second) {
      if (&other != &version && other.window.overlaps(reopened)) return false;
    }
    version.window = reopened;
    ++revision_;
    return true;
  }
  return false;
}

bool RuntimeTable::erase_ternary(std::size_t handle) {
  if (!tcam_) return false;
  if (!tcam_->erase(handle)) return false;
  ternary_windows_.erase(handle);
  --size_;
  ++revision_;
  return true;
}

bool RuntimeTable::retire_ternary(std::size_t handle,
                                  std::uint32_t last_epoch) {
  if (!tcam_) return false;
  const auto& entries = tcam_->entries();
  if (std::none_of(entries.begin(), entries.end(), [&](const auto& e) {
        return e.handle == handle;
      })) {
    return false;
  }
  EpochWindow window = ternary_window(handle);
  if (!window.open() || last_epoch < window.from) return false;
  window.to = last_epoch;
  ternary_windows_[handle] = window;
  ++revision_;
  return true;
}

bool RuntimeTable::unretire_ternary(std::size_t handle,
                                    std::uint32_t last_epoch) {
  auto it = ternary_windows_.find(handle);
  if (it == ternary_windows_.end() || it->second.to != last_epoch) {
    return false;
  }
  it->second.to = kEpochOpen;
  if (it->second.is_default()) ternary_windows_.erase(it);
  ++revision_;
  return true;
}

std::optional<std::size_t> RuntimeTable::find_ternary(
    const std::vector<net::TernaryField>& key, std::int32_t priority) const {
  if (!tcam_) return std::nullopt;
  for (const auto& e : tcam_->entries()) {
    if (e.key == key && e.priority == priority &&
        ternary_window(e.handle).open()) {
      return e.handle;
    }
  }
  return std::nullopt;
}

EpochWindow RuntimeTable::ternary_window(std::size_t handle) const {
  auto it = ternary_windows_.find(handle);
  return it == ternary_windows_.end() ? EpochWindow{} : it->second;
}

std::size_t RuntimeTable::gc(std::uint32_t min_live) {
  std::size_t removed = 0;
  for (auto it = exact_.begin(); it != exact_.end();) {
    auto& versions = it->second;
    const std::size_t before = versions.size();
    versions.erase(std::remove_if(versions.begin(), versions.end(),
                                  [&](const ExactEntry& e) {
                                    return e.window.to < min_live;
                                  }),
                   versions.end());
    removed += before - versions.size();
    it = versions.empty() ? exact_.erase(it) : std::next(it);
  }
  if (tcam_) {
    std::vector<std::size_t> dead;
    for (const auto& [handle, window] : ternary_windows_) {
      if (window.to < min_live) dead.push_back(handle);
    }
    for (std::size_t handle : dead) {
      if (tcam_->erase(handle)) ++removed;
      ternary_windows_.erase(handle);
    }
  }
  size_ -= removed;
  if (removed > 0) ++revision_;
  return removed;
}

const std::vector<RuntimeTable::ExactEntry>* RuntimeTable::exact_versions(
    const std::vector<std::uint64_t>& key) const {
  if (tcam_) return nullptr;
  auto it = exact_.find(exact_key_string(key));
  return it == exact_.end() ? nullptr : &it->second;
}

const RuntimeTable::ExactEntry* RuntimeTable::find_exact(
    const std::vector<std::uint64_t>& key) const {
  if (tcam_) return nullptr;
  auto it = exact_.find(exact_key_string(key));
  if (it == exact_.end()) return nullptr;
  for (const ExactEntry& version : it->second) {
    if (version.window.open()) return &version;
  }
  return nullptr;
}

const RuntimeTable::ExactEntry* RuntimeTable::find_exact(
    const std::vector<std::uint64_t>& key, std::uint32_t epoch) const {
  if (tcam_) return nullptr;
  auto it = exact_.find(exact_key_string(key));
  if (it == exact_.end()) return nullptr;
  for (const ExactEntry& version : it->second) {
    if (version.window.contains(epoch)) return &version;
  }
  return nullptr;
}

LookupResult RuntimeTable::lookup(
    const std::vector<std::optional<std::uint64_t>>& key,
    std::uint32_t epoch) const {
  LookupResult result;
  result.action.action = def_->default_action;

  auto count = [&](LookupResult r) {
    (r.hit ? hits_ : misses_) += 1;
    return r;
  };

  // Keyless tables always "run" their default action but count as a
  // hit for gating purposes (const default_action in Fig. 4).
  if (def_->keyless()) {
    result.hit = true;
    return count(result);
  }

  // A missing packet field can never match.
  std::vector<std::uint64_t> values;
  values.reserve(key.size());
  for (const auto& v : key) {
    if (!v) return count(result);
    values.push_back(*v);
  }

  if (tcam_) {
    // Priority-ordered scan skipping entries outside the packet's
    // epoch (the TCAM's own lookup() is epoch-blind).
    for (const auto& e : tcam_->entries()) {
      if (!ternary_window(e.handle).contains(epoch)) continue;
      bool hit = true;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (!e.key[i].matches(values[i])) {
          hit = false;
          break;
        }
      }
      if (hit) {
        result.hit = true;
        result.action = e.value;
        break;
      }
    }
    return count(result);
  }

  if (const ExactEntry* entry = find_exact(values, epoch)) {
    result.hit = true;
    result.action = entry->action;
  }
  return count(result);
}

std::vector<RuntimeTable::ExactEntry> RuntimeTable::exact_entries() const {
  std::vector<ExactEntry> out;
  out.reserve(exact_.size());
  for (const auto& [key_string, versions] : exact_) {
    out.insert(out.end(), versions.begin(), versions.end());
  }
  return out;
}

const std::vector<net::Tcam<ActionCall>::Entry>&
RuntimeTable::ternary_entries() const {
  static const std::vector<net::Tcam<ActionCall>::Entry> kEmpty;
  return tcam_ ? tcam_->entries() : kEmpty;
}

void RuntimeTable::clear() {
  exact_.clear();
  if (tcam_) tcam_.emplace(def_->keys.size());
  ternary_windows_.clear();
  size_ = 0;
  ++revision_;
}

}  // namespace dejavu::sim
