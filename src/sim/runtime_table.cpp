#include "sim/runtime_table.hpp"

#include <stdexcept>

namespace dejavu::sim {

namespace {

std::string exact_key_string(const std::vector<std::uint64_t>& key) {
  std::string s;
  for (std::uint64_t v : key) {
    s += std::to_string(v);
    s += '|';
  }
  return s;
}

}  // namespace

RuntimeTable::RuntimeTable(const p4ir::Table& def) : def_(&def) {
  if (def.needs_tcam()) {
    tcam_.emplace(def.keys.size());
  }
}

void RuntimeTable::add_exact(const std::vector<std::uint64_t>& key,
                             ActionCall action) {
  if (tcam_) {
    throw std::invalid_argument("table '" + def_->name +
                                "' is ternary/LPM; use add_ternary/add_lpm");
  }
  if (key.size() != def_->keys.size()) {
    throw std::invalid_argument("key arity mismatch for table '" +
                                def_->name + "'");
  }
  const std::string key_string = exact_key_string(key);
  auto it = exact_.find(key_string);
  if (it != exact_.end()) {
    it->second.action = std::move(action);  // reinstall overwrites
    return;
  }
  if (size_ >= def_->max_entries) {
    throw std::invalid_argument("table '" + def_->name + "' is full (" +
                                std::to_string(def_->max_entries) + ")");
  }
  exact_.emplace(key_string, ExactEntry{key, std::move(action)});
  ++size_;
}

std::size_t RuntimeTable::add_ternary(const std::vector<net::TernaryField>& key,
                                      std::int32_t priority,
                                      ActionCall action) {
  if (!tcam_) {
    throw std::invalid_argument("table '" + def_->name +
                                "' is exact; use add_exact");
  }
  if (size_ >= def_->max_entries) {
    throw std::invalid_argument("table '" + def_->name + "' is full");
  }
  const std::size_t handle = tcam_->insert(key, priority, std::move(action));
  ++size_;
  return handle;
}

std::size_t RuntimeTable::add_lpm(std::uint64_t value, std::uint8_t prefix_len,
                                  ActionCall action) {
  if (!tcam_) {
    throw std::invalid_argument("table '" + def_->name +
                                "' is exact; use add_exact");
  }
  // Find the LPM component; other components become full wildcards.
  std::vector<net::TernaryField> key(def_->keys.size());
  bool found = false;
  for (std::size_t i = 0; i < def_->keys.size(); ++i) {
    if (def_->keys[i].kind == p4ir::MatchKind::kLpm) {
      const std::uint16_t bits = def_->keys[i].bits;
      if (prefix_len > bits) {
        throw std::invalid_argument("prefix length exceeds key width");
      }
      std::uint64_t mask =
          prefix_len == 0
              ? 0
              : (~std::uint64_t{0} << (bits - prefix_len)) &
                    (bits >= 64 ? ~std::uint64_t{0}
                                : ((std::uint64_t{1} << bits) - 1));
      key[i] = net::TernaryField{value & mask, mask};
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("table '" + def_->name +
                                "' has no LPM key component");
  }
  return add_ternary(key, prefix_len, std::move(action));
}

bool RuntimeTable::remove_exact(const std::vector<std::uint64_t>& key) {
  if (tcam_) return false;
  if (exact_.erase(exact_key_string(key)) == 0) return false;
  --size_;
  return true;
}

bool RuntimeTable::erase_ternary(std::size_t handle) {
  if (!tcam_) return false;
  if (!tcam_->erase(handle)) return false;
  --size_;
  return true;
}

const RuntimeTable::ExactEntry* RuntimeTable::find_exact(
    const std::vector<std::uint64_t>& key) const {
  if (tcam_) return nullptr;
  auto it = exact_.find(exact_key_string(key));
  return it == exact_.end() ? nullptr : &it->second;
}

LookupResult RuntimeTable::lookup(
    const std::vector<std::optional<std::uint64_t>>& key) const {
  LookupResult result;
  result.action.action = def_->default_action;

  auto count = [&](LookupResult r) {
    (r.hit ? hits_ : misses_) += 1;
    return r;
  };

  // Keyless tables always "run" their default action but count as a
  // hit for gating purposes (const default_action in Fig. 4).
  if (def_->keyless()) {
    result.hit = true;
    return count(result);
  }

  // A missing packet field can never match.
  std::vector<std::uint64_t> values;
  values.reserve(key.size());
  for (const auto& v : key) {
    if (!v) return count(result);
    values.push_back(*v);
  }

  if (tcam_) {
    if (const ActionCall* hit = tcam_->lookup(values)) {
      result.hit = true;
      result.action = *hit;
    }
    return count(result);
  }

  auto it = exact_.find(exact_key_string(values));
  if (it != exact_.end()) {
    result.hit = true;
    result.action = it->second.action;
  }
  return count(result);
}

std::vector<RuntimeTable::ExactEntry> RuntimeTable::exact_entries() const {
  std::vector<ExactEntry> out;
  out.reserve(exact_.size());
  for (const auto& [key_string, entry] : exact_) out.push_back(entry);
  return out;
}

const std::vector<net::Tcam<ActionCall>::Entry>&
RuntimeTable::ternary_entries() const {
  static const std::vector<net::Tcam<ActionCall>::Entry> kEmpty;
  return tcam_ ? tcam_->entries() : kEmpty;
}

void RuntimeTable::clear() {
  exact_.clear();
  if (tcam_) tcam_.emplace(def_->keys.size());
  size_ = 0;
}

}  // namespace dejavu::sim
