#include "sim/dataplane.hpp"

#include <stdexcept>

#include "merge/compose.hpp"
#include "net/checksum.hpp"
#include "sfc/header.hpp"

namespace dejavu::sim {

DataPlane::DataPlane(const p4ir::Program& program,
                     const p4ir::TupleIdTable& ids,
                     asic::SwitchConfig config)
    : program_(&program),
      ids_(&ids),
      config_(std::move(config)),
      max_passes_(config_.max_pipeline_passes()) {
  for (const p4ir::ControlBlock& control : program.controls()) {
    auto& per_control = tables_[control.name()];
    for (const p4ir::Table& t : control.tables()) {
      per_control.emplace(t.name, RuntimeTable(t));
    }
    auto& regs = registers_[control.name()];
    for (const p4ir::RegisterDef& r : control.registers()) {
      regs.emplace(r.name, std::vector<std::uint64_t>(r.size, 0));
    }
  }
}

std::vector<std::uint64_t>* DataPlane::register_array(
    const std::string& control_name, const std::string& reg) {
  auto cit = registers_.find(control_name);
  if (cit == registers_.end()) return nullptr;
  auto rit = cit->second.find(reg);
  return rit == cit->second.end() ? nullptr : &rit->second;
}

std::vector<RuntimeTable*> DataPlane::tables_named(const std::string& table) {
  std::vector<RuntimeTable*> out;
  for (auto& [control_name, per_control] : tables_) {
    auto it = per_control.find(table);
    if (it != per_control.end()) out.push_back(&it->second);
  }
  return out;
}

RuntimeTable* DataPlane::table_in(const std::string& control_name,
                                  const std::string& table) {
  auto cit = tables_.find(control_name);
  if (cit == tables_.end()) return nullptr;
  auto tit = cit->second.find(table);
  return tit == cit->second.end() ? nullptr : &tit->second;
}

void DataPlane::set_port_down(std::uint16_t port, bool down) {
  if (down) {
    down_ports_.insert(port);
  } else {
    down_ports_.erase(port);
  }
}

bool DataPlane::loops_back(std::uint16_t port) const {
  if (port >= config_.spec().total_ports()) {
    // Dedicated recirculation ports always loop back.
    return port < config_.spec().total_ports() + config_.spec().pipelines;
  }
  return config_.is_loopback(port);
}

std::uint32_t DataPlane::pipeline_of(std::uint16_t port) const {
  const asic::TargetSpec& spec = config_.spec();
  if (port >= spec.total_ports()) {
    return port - spec.total_ports();  // dedicated recirc port index
  }
  return spec.pipeline_of_port(port);
}

namespace {

/// Evaluate an apply entry's guards against the current state.
bool guards_pass(const p4ir::ApplyEntry& entry, const FieldView& view,
                 const std::map<std::string, bool>& hits) {
  if (entry.field_guard) {
    auto v = view.read(entry.field_guard->field);
    if (!v) return false;  // missing header: condition is vacuously false
    if (!entry.field_guard->holds(*v)) return false;
  }
  for (const std::string& guard : entry.guard_tables) {
    auto it = hits.find(guard);
    const bool hit = it != hits.end() && it->second;
    const bool want_hit = entry.mode != p4ir::GuardMode::kIfMiss;
    if (hit != want_hit) return false;
  }
  return true;
}

}  // namespace

void DataPlane::execute_action(const p4ir::ControlBlock& control,
                               const ActionCall& call, FieldView& view,
                               SwitchOutput& out) {
  const p4ir::Action* action = control.find_action(call.action);
  if (action == nullptr) {
    throw std::logic_error("runtime action '" + call.action +
                           "' not defined in control '" + control.name() +
                           "'");
  }
  auto arg = [&](const std::string& param) -> std::uint64_t {
    auto it = call.args.find(param);
    if (it == call.args.end()) {
      throw std::logic_error("action '" + call.action +
                             "' invoked without argument '" + param + "'");
    }
    return it->second;
  };

  for (const p4ir::Primitive& p : action->primitives) {
    switch (p.op) {
      case p4ir::PrimitiveOp::kNoop:
        break;
      case p4ir::PrimitiveOp::kSetImmediate:
        view.write(p.dst, p.imm);
        break;
      case p4ir::PrimitiveOp::kSetFromParam:
        view.write(p.dst, arg(p.param));
        break;
      case p4ir::PrimitiveOp::kCopy: {
        auto v = view.read(p.src);
        if (v) view.write(p.dst, *v);
        break;
      }
      case p4ir::PrimitiveOp::kAdd: {
        auto v = view.read(p.dst);
        if (v) view.write(p.dst, *v + p.imm);
        break;
      }
      case p4ir::PrimitiveOp::kHash: {
        // CRC32 over the concatenated big-endian field bytes, matching
        // the Tofino hash engine (and net::FiveTuple::session_hash).
        net::Crc32 crc;
        for (const std::string& src : p.srcs) {
          auto v = view.read(src).value_or(0);
          auto bits = program_->field_bits(src).value_or(32);
          const std::size_t bytes = (bits + 7) / 8;
          for (std::size_t i = 0; i < bytes; ++i) {
            crc.add_u8(static_cast<std::uint8_t>(
                (v >> (8 * (bytes - 1 - i))) & 0xff));
          }
        }
        view.write(p.dst, crc.finish());
        break;
      }
      case p4ir::PrimitiveOp::kPushSfc: {
        sfc::SfcHeader header;
        sfc::push_sfc(view.packet(), header);
        view.reparse(*ids_);
        break;
      }
      case p4ir::PrimitiveOp::kPopSfc: {
        if (view.has_header("sfc")) {
          sfc::pop_sfc(view.packet());
          view.reparse(*ids_);
        }
        break;
      }
      case p4ir::PrimitiveOp::kDrop:
        view.meta().drop_flag = true;
        break;
      case p4ir::PrimitiveOp::kSetContext: {
        auto header = sfc::read_sfc(view.packet());
        if (header) {
          header->context.set(static_cast<std::uint8_t>(p.imm),
                              static_cast<std::uint16_t>(arg(p.param)));
          sfc::write_sfc(view.packet(), *header);
        }
        break;
      }
      case p4ir::PrimitiveOp::kRegisterRead:
      case p4ir::PrimitiveOp::kRegisterAdd:
      case p4ir::PrimitiveOp::kRegisterWrite: {
        const p4ir::RegisterDef* def = control.find_register(p.param);
        std::vector<std::uint64_t>* cells =
            register_array(control.name(), p.param);
        if (def == nullptr || cells == nullptr) {
          throw std::logic_error("action '" + call.action +
                                 "' uses unknown register '" + p.param + "'");
        }
        const std::uint64_t index =
            (p.src.empty() ? p.imm : view.read(p.src).value_or(0)) %
            cells->size();
        const std::uint64_t width_mask =
            def->width_bits >= 64
                ? ~std::uint64_t{0}
                : (std::uint64_t{1} << def->width_bits) - 1;
        std::uint64_t& cell = (*cells)[index];
        if (p.op == p4ir::PrimitiveOp::kRegisterRead) {
          view.write(p.dst, cell);
        } else if (p.op == p4ir::PrimitiveOp::kRegisterAdd) {
          cell = (cell + p.imm) & width_mask;
          if (!p.dst.empty()) view.write(p.dst, cell);
        } else {  // kRegisterWrite
          std::uint64_t value =
              p.srcs.empty() ? p.imm : view.read(p.srcs[0]).value_or(0);
          cell = value & width_mask;
        }
        break;
      }
    }
  }
  out.trace.push_back("  action " + call.action);
}

void DataPlane::run_pipelet(const asic::PipeletId& id, net::Packet& packet,
                            StandardMetadata& meta, SwitchOutput& out) {
  out.pipelets_visited.push_back(id);
  const p4ir::ControlBlock* control =
      program_->find_control(merge::pipelet_control_name(id));
  if (control == nullptr) {
    out.trace.push_back(id.to_string() + ": no program, pass-through");
    return;
  }
  out.trace.push_back(id.to_string() + ":");

  FieldView view(*program_, packet, run_parser(*program_, *ids_, packet),
                 meta);
  std::map<std::string, bool> hits;

  // Parallel composition (§3.2, Fig. 5) is an if/else-if cascade: the
  // first branch whose gate table hits is taken; every other branch is
  // skipped, checks included. Empty branch_id = unconditional.
  std::string taken_branch;
  std::map<std::string, bool> branch_checked;

  for (const p4ir::ApplyEntry& entry : control->apply_order()) {
    if (!entry.branch_id.empty()) {
      if (!taken_branch.empty() && entry.branch_id != taken_branch) continue;
      if (taken_branch.empty() && branch_checked[entry.branch_id]) {
        continue;  // this branch's gate already missed
      }
    }
    if (!guards_pass(entry, view, hits)) {
      // A branch whose gate condition fails outright (e.g. the
      // classifier's EtherType guard) is dead for this pass.
      if (!entry.branch_id.empty() && taken_branch.empty()) {
        branch_checked[entry.branch_id] = true;
      }
      continue;
    }
    const p4ir::Table* table = control->find_table(entry.table);
    RuntimeTable* rt = table_in(control->name(), entry.table);
    if (table == nullptr || rt == nullptr) {
      throw std::logic_error("apply of unknown table '" + entry.table + "'");
    }

    std::vector<std::optional<std::uint64_t>> key;
    key.reserve(table->keys.size());
    for (const p4ir::TableKey& k : table->keys) key.push_back(view.read(k.field));

    LookupResult result = rt->lookup(key, meta.epoch);
    hits[entry.table] = result.hit;
    if (!entry.branch_id.empty() && taken_branch.empty()) {
      // First executed entry of a branch is its gate: a hit takes the
      // branch, a miss kills it.
      branch_checked[entry.branch_id] = true;
      if (result.hit) taken_branch = entry.branch_id;
    }
    out.trace.push_back("  " + entry.table +
                        (result.hit ? " hit" : " miss"));
    if (!result.action.action.empty()) {
      execute_action(*control, result.action, view, out);
    }
  }
}

const DataPlane::PortCounters& DataPlane::port_counters(
    std::uint16_t port) const {
  return counters_[port];
}

std::uint64_t DataPlane::punts_outstanding_below(std::uint32_t epoch) const {
  std::uint64_t n = 0;
  for (const auto& [e, count] : punts_outstanding_) {
    if (e < epoch) n += count;
  }
  return n;
}

std::uint64_t DataPlane::flush_stale_punts(std::uint32_t max_epoch) {
  std::uint64_t flushed = 0;
  for (auto it = punts_outstanding_.begin();
       it != punts_outstanding_.end();) {
    if (it->first <= max_epoch) {
      flushed += it->second;
      it = punts_outstanding_.erase(it);
    } else {
      ++it;
    }
  }
  return flushed;
}

std::size_t DataPlane::gc_epochs(std::uint32_t min_live) {
  std::size_t removed = 0;
  for (auto& [control_name, per_control] : tables_) {
    for (auto& [table_name, rt] : per_control) {
      removed += rt.gc(min_live);
    }
  }
  if (min_live > min_live_epoch_) min_live_epoch_ = min_live;
  return removed;
}

std::uint32_t DataPlane::register_epoch(const std::string& control_name,
                                        const std::string& reg) const {
  auto it = register_epochs_.find({control_name, reg});
  return it == register_epochs_.end() ? 0 : it->second;
}

void DataPlane::set_register_epoch(const std::string& control_name,
                                   const std::string& reg,
                                   std::uint32_t epoch) {
  if (epoch == 0) {
    register_epochs_.erase({control_name, reg});
  } else {
    register_epochs_[{control_name, reg}] = epoch;
  }
}

void DataPlane::reset_counters() { counters_.clear(); }

void DataPlane::emit(net::Packet packet, std::uint16_t port,
                     SwitchOutput& out) {
  counters_[port].tx_packets += 1;
  counters_[port].tx_bytes += packet.size();
  // Deparser duty: refresh the IPv4 header checksum after field edits.
  ParseResult parsed = run_parser(*program_, *ids_, packet);
  if (auto off = parsed.offset_of("ipv4")) {
    auto hdr = net::Ipv4Header::decode(packet.data().view().subspan(*off));
    if (hdr) {
      hdr->encode(packet.data().mutable_slice(*off, hdr->header_length()),
                  /*fill_checksum=*/true);
    }
  }
  out.out.push_back(SwitchOutput::Emitted{port, std::move(packet)});
}

SwitchOutput DataPlane::process(net::Packet packet, std::uint16_t in_port,
                                bool from_cpu,
                                std::optional<std::uint32_t> stamp) {
  SwitchOutput out;
  out.epoch = stamp.value_or(epoch_);
  if (from_cpu && stamp) {
    // A stamped CPU reinjection closes out an outstanding punt.
    auto it = punts_outstanding_.find(*stamp);
    if (it != punts_outstanding_.end() && it->second > 0) {
      if (--it->second == 0) punts_outstanding_.erase(it);
    }
  }
  if (stamp && *stamp < min_live_epoch_) {
    // The generation this packet started on has been garbage-collected
    // by a completed live update; finishing it now could only blend
    // generations, so the drain policy terminates it attributably.
    out.set_drop(DropCode::kUpdateDrained,
                 "stamped epoch " + std::to_string(*stamp) +
                     " was retired by a live update (min live epoch " +
                     std::to_string(min_live_epoch_) + ")");
    return out;
  }
  const asic::TargetSpec& spec = config_.spec();
  if (in_port >= spec.total_ports() + spec.pipelines) {
    out.set_drop(DropCode::kInvalidIngressPort, "invalid ingress port");
    return out;
  }
  if (!from_cpu && in_port >= spec.total_ports()) {
    out.set_drop(DropCode::kRecircPortExternal,
                 "dedicated recirculation ports take no external traffic");
    return out;
  }
  if (!from_cpu && config_.is_loopback(in_port)) {
    out.set_drop(DropCode::kLoopbackPortExternal,
                 "port " + std::to_string(in_port) +
                     " is in loopback mode and takes no external traffic");
    return out;
  }
  if (is_port_down(in_port)) {
    out.set_drop(DropCode::kPortDown,
                 "ingress port " + std::to_string(in_port) + " is down");
    return out;
  }

  StandardMetadata meta;
  meta.ingress_port = in_port;
  meta.packet_length = static_cast<std::uint32_t>(packet.size());
  meta.epoch = out.epoch;
  std::uint32_t pipeline = pipeline_of(in_port);
  counters_[in_port].rx_packets += 1;
  counters_[in_port].rx_bytes += packet.size();

  for (std::uint32_t pass = 0; pass < max_passes_; ++pass) {
    // --- ingress pipe ---
    meta.egress_spec = sfc::kPortUnset;
    meta.clear_flags();
    run_pipelet({pipeline, asic::PipeKind::kIngress}, packet, meta, out);

    // toCpu outranks drop: a packet the data plane wants the control
    // plane to see (e.g. an LB session miss) must reach it even if a
    // later table in the same pass (the branching default) flagged a
    // drop for the undeliverable in-between state.
    if (meta.to_cpu_flag) {
      out.to_cpu.push_back(
          SwitchOutput::CpuPunt{meta.ingress_port, packet, meta.epoch});
      ++punts_outstanding_[meta.epoch];
      return out;
    }
    if (meta.drop_flag) {
      out.set_drop(DropCode::kIngressDrop,
                   "dropped in ingress pipe " + std::to_string(pipeline));
      return out;
    }
    if (meta.resubmit_flag) {
      ++out.resubmissions;
      out.trace.push_back("resubmit to ingress " + std::to_string(pipeline));
      continue;
    }
    if (meta.egress_spec == sfc::kPortUnset) {
      out.set_drop(DropCode::kNoEgressDecision,
                   "no egress decision after ingress pipe");
      return out;
    }

    const std::uint16_t port = meta.egress_spec;
    if (port >= spec.total_ports() + spec.pipelines) {
      out.set_drop(DropCode::kInvalidEgressSpec,
                   "egress_spec " + std::to_string(port) +
                       " is not a valid port");
      return out;
    }
    if (is_port_down(port)) {
      // The traffic manager's view of a dead link or faulted
      // recirculation port: the packet has nowhere to go.
      out.set_drop(DropCode::kPortDown,
                   (loops_back(port) ? "recirculation port "
                                     : "egress port ") +
                       std::to_string(port) + " is down");
      return out;
    }

    // --- traffic manager: any ingress pipe to any egress pipe ---
    const std::uint32_t egress_pipeline = pipeline_of(port);
    meta.egress_port = port;

    if (meta.mirror_flag && mirror_port_) {
      emit(packet, *mirror_port_, out);
      out.trace.push_back("mirrored to port " +
                          std::to_string(*mirror_port_));
    }

    // --- egress pipe ---
    run_pipelet({egress_pipeline, asic::PipeKind::kEgress}, packet, meta,
                out);

    if (meta.to_cpu_flag) {
      out.to_cpu.push_back(
          SwitchOutput::CpuPunt{meta.ingress_port, packet, meta.epoch});
      ++punts_outstanding_[meta.epoch];
      return out;
    }
    if (meta.drop_flag) {
      out.set_drop(DropCode::kEgressDrop,
                   "dropped in egress pipe " + std::to_string(egress_pipeline));
      return out;
    }

    // --- port disposition ---
    if (loops_back(port)) {
      ++out.recirculations;
      out.recirc_ports.push_back(port);
      // The loopback port transmits and immediately re-receives the
      // packet — these counters are the §4 recirculation-load
      // measurement point.
      counters_[port].tx_packets += 1;
      counters_[port].tx_bytes += packet.size();
      counters_[port].rx_packets += 1;
      counters_[port].rx_bytes += packet.size();
      out.trace.push_back("recirculate via port " + std::to_string(port) +
                          " into ingress " +
                          std::to_string(egress_pipeline));
      pipeline = egress_pipeline;
      meta.ingress_port = port;
      continue;
    }
    emit(std::move(packet), port, out);
    return out;
  }

  out.set_drop(DropCode::kMaxPassesExceeded,
               "packet exceeded " + std::to_string(max_passes_) +
                   " pipeline passes (routing loop?)");
  if (!out.recirc_ports.empty()) {
    out.drop_reason += "; recirc ports:";
    for (std::uint16_t p : out.recirc_ports) {
      out.drop_reason += " " + std::to_string(p);
    }
  }
  return out;
}

}  // namespace dejavu::sim
