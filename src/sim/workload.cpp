#include "sim/workload.hpp"

#include <random>
#include <set>

namespace dejavu::sim {

std::vector<Flow> generate_flows(const FlowMix& mix) {
  std::mt19937_64 rng(mix.seed);
  std::uniform_int_distribution<std::uint32_t> host(1, 0xfffe);
  std::uniform_int_distribution<std::uint32_t> port(1024, 65535);

  std::vector<Flow> flows;
  std::set<std::pair<std::uint32_t, std::uint16_t>> seen;
  while (flows.size() < mix.flows) {
    const std::uint32_t src = (mix.src_base.value() & 0xffff0000u) |
                              host(rng);
    const auto sport = static_cast<std::uint16_t>(port(rng));
    if (!seen.emplace(src, sport).second) continue;

    Flow flow;
    flow.spec.ip_src = net::Ipv4Addr(src);
    flow.spec.ip_dst = mix.dst;
    flow.spec.protocol = mix.protocol;
    flow.spec.src_port = sport;
    flow.spec.dst_port = mix.dst_port;
    flow.spec.payload_size = mix.payload_size;
    flows.push_back(std::move(flow));
  }
  return flows;
}

}  // namespace dejavu::sim
