// Parallel traffic replay: drive real packet streams through the
// behavioral DataPlane on N host threads and cross-check the paper's
// §4 claim that chain throughput is *calculable* after placement.
//
// Parallelism model — flow sharding. Distinct flows are independent
// (the NF-parallelism observation of "SDN based Network Function
// Parallelism in Cloud"): every per-flow effect in the switch (LB
// session learning, per-flow register cells) is keyed by the flow's
// own identity. So each worker thread owns a *private* replica of the
// switch under test (same composed program, same installed rules) and
// processes the flows whose FiveTuple hash lands in its shard. No
// locks, no shared mutable state; workers only meet at the final
// merge.
//
// Determinism contract: the merged ReplayCounters are a pure function
// of the flow set and the target — identical for any worker count,
// batch size, or injection order — because (a) a flow's packets always
// hit the same private replica in injection order, and (b) the merge
// is a sum/union over order-independent, worker-independent values.
// Cross-flow state that *steers* packets (e.g. two flows colliding in
// one session-hash slot) is the one thing that can break the
// contract; the differential tests in tests/test_replay_determinism.cpp
// pin it down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/compiled/compiled_pipeline.hpp"
#include "sim/dataplane.hpp"
#include "sim/throughput.hpp"
#include "sim/workload.hpp"

namespace dejavu::sim {

/// Which execution engine a replay target drives packets through.
/// Both produce bit-identical ReplayCounters (the differential suite's
/// oracle, ctest -L compiled); they differ only in speed and in the
/// perf-side compiled/fallback tallies.
enum class EngineKind : std::uint8_t {
  kInterpreter,  ///< the generic DataPlane::process walk
  kCompiled,     ///< sim::CompiledPipeline with interpreter fallback
};

/// One flow to replay, labeled with the chain path the caller expects
/// it to take (for per-path statistics) and its ingress port.
struct ReplayFlow {
  Flow flow;
  std::uint16_t in_port = 0;
  std::uint16_t path_id = 0;
};

/// Tag `generate_flows(mix)` output for replay on one chain path.
std::vector<ReplayFlow> make_path_flows(const FlowMix& mix,
                                        std::uint16_t path_id,
                                        std::uint16_t in_port = 0);

/// One worker's private copy of the switch under test. The engine
/// builds `workers` of them via a TargetFactory; a target is only ever
/// touched by its owning worker thread.
class ReplayTarget {
 public:
  virtual ~ReplayTarget() = default;
  /// Inject one packet and run it to completion (implementations may
  /// service CPU punts, i.e. behave as dataplane + control plane).
  virtual SwitchOutput inject(net::Packet packet, std::uint16_t in_port) = 0;
  /// The behavioral switch, for port counters and pipeline lookups.
  virtual DataPlane& dataplane() = 0;

  /// Select the execution engine. The base implementation knows only
  /// the interpreter, so kCompiled is a silent no-op — a target that
  /// cannot compile stays correct, just not fast. Overriders must keep
  /// the merged counters engine-independent.
  virtual void set_engine(EngineKind) {}
  virtual EngineKind engine() const { return EngineKind::kInterpreter; }
  /// Cumulative engine tallies since construction (perf side only —
  /// ReplayEngine::run reports per-run deltas). A pure-interpreter
  /// target reports zero for both.
  virtual std::uint64_t compiled_packets() const { return 0; }
  virtual std::uint64_t fallback_packets() const { return 0; }
};

/// Builds worker `index`'s private target. Must be safe to call from
/// the engine's setup phase (single-threaded, in worker order).
using TargetFactory =
    std::function<std::unique_ptr<ReplayTarget>(std::uint32_t index)>;

/// A bare-DataPlane target: processes packets with no CPU behind the
/// switch (punts are counted, not serviced). `setup` installs rules
/// into the private replica.
class DataPlaneTarget : public ReplayTarget {
 public:
  DataPlaneTarget(const p4ir::Program& program, const p4ir::TupleIdTable& ids,
                  asic::SwitchConfig config,
                  const std::function<void(DataPlane&)>& setup = {});

  SwitchOutput inject(net::Packet packet, std::uint16_t in_port) override;
  DataPlane& dataplane() override { return dp_; }

  /// kCompiled builds (or reuses) a CompiledPipeline over the private
  /// replica; packets it can't take fall back to the interpreter
  /// inside the pipeline, so inject() behavior is engine-independent.
  void set_engine(EngineKind kind) override;
  EngineKind engine() const override { return engine_; }
  std::uint64_t compiled_packets() const override;
  std::uint64_t fallback_packets() const override;

  /// Witness seed for the next compile (explore::compile_seed output);
  /// rebuilds an already-live compiled engine immediately.
  void set_compile_seed(CompileSeed seed);
  /// The live compiled engine, or nullptr while on the interpreter
  /// (exposed for generation()/stats() assertions in tests).
  CompiledPipeline* compiled() { return compiled_.get(); }

 private:
  DataPlane dp_;
  CompileSeed seed_;
  std::unique_ptr<CompiledPipeline> compiled_;
  EngineKind engine_ = EngineKind::kInterpreter;
};

struct ReplayConfig {
  std::uint32_t workers = 1;
  /// Engine every worker target is switched to before the timed phase.
  /// Changes speed and the report's compiled/fallback tallies, never
  /// the merged ReplayCounters.
  EngineKind engine = EngineKind::kInterpreter;
  std::uint32_t packets_per_flow = 1;
  /// Packets of one flow injected back-to-back before the worker moves
  /// on to its next flow. Affects only interleaving, never the merged
  /// counters.
  std::uint32_t batch = 16;
  /// When set, each worker visits its shard in a shuffled order
  /// (seeded with shuffle_seed ^ worker index). Again: interleaving
  /// only; the merged counters must not change.
  std::optional<std::uint64_t> shuffle_seed;

  /// Concurrent-update replay (§11): fire a reconfiguration mid-stream
  /// and assert per-packet consistency. The flip point is keyed on the
  /// per-flow packet index — every flow sees exactly `at_packet`
  /// packets on the old generation — so the merged counters (including
  /// packets_by_epoch) stay bit-identical across worker counts.
  struct ReplayUpdate {
    /// Per-flow packet index at which the update is applied (clamped
    /// to packets_per_flow).
    std::uint32_t at_packet = 0;
    /// Applies the update to one worker's private replica. Called once
    /// per worker, on that worker's thread, between the two replay
    /// segments; its duration lands in WorkerStats::update_seconds.
    std::function<void(ReplayTarget&, std::uint32_t worker)> apply;
  };
  std::optional<ReplayUpdate> update;
};

/// Per-path slice of the merged counters.
struct PathCounters {
  std::uint64_t offered = 0;    ///< packets injected
  std::uint64_t delivered = 0;  ///< packets with >= 1 front-panel emission
  std::uint64_t dropped = 0;
  std::uint64_t punted = 0;  ///< packets that ended (partly) at the CPU
  std::uint64_t recirculations = 0;
  std::uint64_t resubmissions = 0;
  /// Steady-state recirculation pipeline sequence of the path,
  /// attributed to the delivered flow with the highest session hash —
  /// a worker-count-independent pick, since that flow lives on exactly
  /// one worker under any sharding.
  std::vector<std::uint32_t> loop_pipelines;
  std::uint32_t canon_flow_hash = 0;

  double delivery_fraction() const {
    return offered > 0 ? static_cast<double>(delivered) / offered : 1.0;
  }

  bool operator==(const PathCounters&) const = default;
};

/// The deterministic half of a replay's result: everything here is
/// bit-identical across worker counts / batch sizes / orders.
struct ReplayCounters {
  std::uint64_t packets = 0;
  std::uint64_t delivered = 0;
  std::uint64_t emitted = 0;  ///< total emissions (mirror copies count)
  std::uint64_t dropped = 0;
  std::uint64_t punted = 0;
  std::uint64_t recirculations = 0;
  std::uint64_t resubmissions = 0;
  std::map<std::string, std::uint64_t> drop_reasons;
  std::map<std::uint16_t, DataPlane::PortCounters> ports;
  std::map<std::uint16_t, PathCounters> per_path;
  /// Packets by the epoch stamp their lookups ran under — under a
  /// concurrent update, every packet is attributable to exactly one
  /// generation (§11 per-packet consistency).
  std::map<std::uint32_t, std::uint64_t> packets_by_epoch;

  bool operator==(const ReplayCounters&) const = default;
};

/// The perf half: wall-clock and per-worker timings (never compared).
struct WorkerStats {
  std::uint32_t worker = 0;
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  double busy_seconds = 0;
  /// Time spent applying the mid-stream update (flip latency), when
  /// ReplayConfig::update is set.
  double update_seconds = 0;

  double pps() const { return busy_seconds > 0 ? packets / busy_seconds : 0; }
};

struct ReplayReport {
  ReplayCounters counters;
  std::vector<WorkerStats> workers;
  double wall_seconds = 0;
  /// Engine this run used, plus per-run engine tallies (perf side,
  /// deliberately outside ReplayCounters so the determinism oracle
  /// compares counters across engines). Interpreter runs report all
  /// packets as fallback-free interpreter work: both tallies zero.
  EngineKind engine = EngineKind::kInterpreter;
  std::uint64_t compiled_packets = 0;  ///< ran fully on the fast path
  std::uint64_t fallback_packets = 0;  ///< escaped to the interpreter

  double packets_per_second() const {
    return wall_seconds > 0 ? counters.packets / wall_seconds : 0;
  }
  std::string to_table() const;
};

/// The engine. Targets are built lazily (one per worker, serially, via
/// the factory) and kept warm across run() calls, so benches can
/// measure the replay phase alone; port counters are reset at the
/// start of every run.
class ReplayEngine {
 public:
  explicit ReplayEngine(TargetFactory factory)
      : factory_(std::move(factory)) {}

  ReplayReport run(const std::vector<ReplayFlow>& flows,
                   const ReplayConfig& config = {});

 private:
  TargetFactory factory_;
  std::vector<std::unique_ptr<ReplayTarget>> targets_;
};

/// One-shot convenience: cold engine, single run.
ReplayReport run_replay(const TargetFactory& factory,
                        const std::vector<ReplayFlow>& flows,
                        const ReplayConfig& config = {});

/// Feed replay measurements to the fluid solver: per-path offered
/// gbps from the measured packet shares, loop demands from the
/// measured steady-state recirculation sequences, then scale each
/// path's fluid delivery by its behavioral delivery fraction (packets
/// the switch itself dropped or left at the CPU are gone regardless
/// of recirculation capacity). Comparable to estimate_throughput on
/// the same deployment.
ThroughputReport replay_throughput(const ReplayReport& report,
                                   const asic::SwitchConfig& config,
                                   double total_offered_gbps);

}  // namespace dejavu::sim
