// The §4 latency model (Fig. 8b): port-to-port latency through the
// chip under idle buffers, plus the extra latency of each on-chip
// recirculation (~75 ns, dedicated circuitry, no SerDes) or off-chip
// loop through a DAC cable (~145 ns, SerDes + propagation).
#pragma once

#include <cstdint>

#include "asic/target.hpp"
#include "place/placement.hpp"

namespace dejavu::sim {

enum class RecircMode : std::uint8_t {
  kOnChip,   // loopback port / dedicated recirculation circuitry
  kOffChip,  // external cable between two chips (§7 multi-switch)
};

struct LatencyModel {
  explicit LatencyModel(const asic::TargetSpec& spec) : spec_(spec) {}

  /// Extra latency of one recirculation.
  double recirc_ns(RecircMode mode) const {
    return mode == RecircMode::kOnChip ? spec_.onchip_recirc_latency_ns
                                       : spec_.offchip_recirc_latency_ns;
  }

  /// Port-to-port latency of a packet that needs no recirculation.
  double base_ns() const { return spec_.port_to_port_latency_ns; }

  /// End-to-end latency of a planned traversal: the base port-to-port
  /// time plus per-loop penalties. Resubmissions re-run only the
  /// ingress pipe; we charge them a third of a recirculation.
  double traversal_ns(const place::Traversal& traversal,
                      RecircMode mode = RecircMode::kOnChip) const;

  /// Latency of k recirculations (the Fig. 8(b) series).
  double recirc_total_ns(std::uint32_t k, RecircMode mode) const {
    return base_ns() + k * recirc_ns(mode);
  }

 private:
  asic::TargetSpec spec_;
};

}  // namespace dejavu::sim
