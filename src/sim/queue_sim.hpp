// Packet-level validation of the §4 recirculation model — the
// substitute for the paper's Tofino testbed run (Fig. 8a, which used
// the chip's internal packet generator). A slotted simulation of the
// Fig. 7(a) topology: Ethernet port A takes external traffic, port B
// is in loopback mode; both transmit one fixed-size packet per slot.
// Packets inject at line rate, loop through B `recirculations` times,
// then exit via A. The finite queue at B drops arrivals when full —
// generations compete exactly as the fluid feedback-queue predicts.
#pragma once

#include <cstdint>

namespace dejavu::sim {

struct QueueSimParams {
  std::uint32_t recirculations = 1;
  /// Queue depth at each egress port, in packets.
  std::uint32_t queue_depth = 96;
  /// Simulated slots (one max-size packet transmission each).
  std::uint64_t slots = 200000;
  /// Slots to skip before measuring (queue warm-up).
  std::uint64_t warmup_slots = 20000;
  /// Port capacity used only to scale the reported throughput.
  double capacity_gbps = 100.0;
  std::uint64_t seed = 42;
};

struct QueueSimResult {
  double offered_gbps = 0.0;
  double delivered_gbps = 0.0;     // exit rate at port A
  double loss_fraction = 0.0;      // drops / injected
  double mean_queue_depth = 0.0;   // at the loopback port
  double mean_extra_slots = 0.0;   // queueing delay per delivered packet
};

/// Run the slotted feedback-queue simulation.
QueueSimResult simulate_recirculation(const QueueSimParams& params);

}  // namespace dejavu::sim
