// The behavioral data plane: executes a composed multi-pipelet program
// packet by packet, with the traffic-manager plumbing of Fig. 1 —
// ingress pass, resubmission, egress pass, loopback-port recirculation
// — under the switch's port configuration. This is the bmv2-equivalent
// substitute for the Tofino testbed: it runs the very IR the merge
// stage emits, against the very rules the route stage installs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "asic/switch_config.hpp"
#include "net/packet.hpp"
#include "p4ir/program.hpp"
#include "sim/drop_reason.hpp"
#include "sim/fields.hpp"
#include "sim/runtime_table.hpp"

namespace dejavu::sim {

/// Everything one injected packet produced.
struct SwitchOutput {
  struct Emitted {
    std::uint16_t port = 0;
    net::Packet packet;
  };
  struct CpuPunt {
    std::uint16_t in_port = 0;
    net::Packet packet;
  };

  std::vector<Emitted> out;
  std::vector<CpuPunt> to_cpu;
  bool dropped = false;
  /// Canonical code for the drop (kNone when delivered/punted); the
  /// string carries the per-packet detail for humans. Match on the
  /// code, not the string.
  DropCode drop_code = DropCode::kNone;
  std::string drop_reason;

  void set_drop(DropCode code, std::string reason) {
    dropped = true;
    drop_code = code;
    drop_reason = std::move(reason);
  }

  std::uint32_t resubmissions = 0;
  std::uint32_t recirculations = 0;
  /// The loopback / dedicated-recirc port taken by each recirculation,
  /// in order (size == recirculations). Lets observers attribute
  /// recirculation load to pipelines without parsing the trace.
  std::vector<std::uint16_t> recirc_ports;
  std::vector<asic::PipeletId> pipelets_visited;
  std::vector<std::string> trace;

  bool delivered() const { return !out.empty(); }
};

class DataPlane {
 public:
  /// `program` must outlive the data plane. Pipelet control blocks are
  /// found by merge::pipelet_control_name; unnamed pipelets simply
  /// forward.
  DataPlane(const p4ir::Program& program, const p4ir::TupleIdTable& ids,
            asic::SwitchConfig config);

  const asic::SwitchConfig& config() const { return config_; }
  const p4ir::Program& program() const { return *program_; }
  const p4ir::TupleIdTable& ids() const { return *ids_; }
  std::optional<std::uint16_t> mirror_port() const { return mirror_port_; }

  /// Table handle for the control plane. Searches all pipelet controls
  /// and returns every instance (an NF's table exists once per pipelet
  /// hosting it; framework check tables exist per pipelet too).
  std::vector<RuntimeTable*> tables_named(const std::string& table);

  /// Single-instance lookup within one pipelet's control block.
  RuntimeTable* table_in(const std::string& control_name,
                         const std::string& table);

  /// Register array state (per control block); nullptr when unknown.
  /// Exposed for control-plane reads and tests.
  std::vector<std::uint64_t>* register_array(const std::string& control_name,
                                             const std::string& reg);

  /// Inject a packet on a front-panel port and run it to completion.
  /// `from_cpu` marks control-plane reinjection (Fig. 4's session-miss
  /// flow), which may enter on any port, including loopback ports.
  SwitchOutput process(net::Packet packet, std::uint16_t in_port,
                       bool from_cpu = false);

  /// Is `port` a loopback front-panel port or a dedicated
  /// recirculation port?
  bool loops_back(std::uint16_t port) const;

  /// Pipeline that owns `port` (front-panel or dedicated recirc).
  std::uint32_t pipeline_of(std::uint16_t port) const;

  /// Pass cap; seeded from SwitchConfig::max_pipeline_passes().
  std::uint32_t max_passes() const { return max_passes_; }
  void set_max_passes(std::uint32_t n) { max_passes_ = n; }
  /// Mirror copies go to this port when the mirror flag is raised.
  void set_mirror_port(std::uint16_t port) { mirror_port_ = port; }

  /// Administratively (or by fault injection) mark a port down:
  /// packets whose egress decision or recirculation lands on a down
  /// port are dropped with DropCode::kPortDown. Ingress on a down
  /// port is refused the same way.
  void set_port_down(std::uint16_t port, bool down = true);
  bool is_port_down(std::uint16_t port) const {
    return down_ports_.count(port) > 0;
  }
  const std::set<std::uint16_t>& down_ports() const { return down_ports_; }

  /// Per-port packet/byte counters, as a switch OS would expose them.
  /// Loopback and dedicated recirculation ports accumulate the
  /// recirculating traffic — the §4 measurement point.
  struct PortCounters {
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;

    bool operator==(const PortCounters&) const = default;
    PortCounters& operator+=(const PortCounters& o) {
      rx_packets += o.rx_packets;
      rx_bytes += o.rx_bytes;
      tx_packets += o.tx_packets;
      tx_bytes += o.tx_bytes;
      return *this;
    }
  };
  const PortCounters& port_counters(std::uint16_t port) const;
  /// Every port with traffic so far (ports never touched are absent).
  const std::map<std::uint16_t, PortCounters>& all_port_counters() const {
    return counters_;
  }
  void reset_counters();

 private:
  void run_pipelet(const asic::PipeletId& id, net::Packet& packet,
                   StandardMetadata& meta, SwitchOutput& out);
  void execute_action(const p4ir::ControlBlock& control,
                      const ActionCall& call, FieldView& view,
                      SwitchOutput& out);
  void emit(net::Packet packet, std::uint16_t port, SwitchOutput& out);

  const p4ir::Program* program_;
  const p4ir::TupleIdTable* ids_;
  asic::SwitchConfig config_;
  std::uint32_t max_passes_ = 64;
  std::optional<std::uint16_t> mirror_port_;
  std::set<std::uint16_t> down_ports_;
  // control name -> table name -> runtime table
  std::map<std::string, std::map<std::string, RuntimeTable>> tables_;
  // control name -> register name -> cells
  std::map<std::string, std::map<std::string, std::vector<std::uint64_t>>>
      registers_;
  mutable std::map<std::uint16_t, PortCounters> counters_;
};

}  // namespace dejavu::sim
