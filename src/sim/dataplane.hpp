// The behavioral data plane: executes a composed multi-pipelet program
// packet by packet, with the traffic-manager plumbing of Fig. 1 —
// ingress pass, resubmission, egress pass, loopback-port recirculation
// — under the switch's port configuration. This is the bmv2-equivalent
// substitute for the Tofino testbed: it runs the very IR the merge
// stage emits, against the very rules the route stage installs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "asic/switch_config.hpp"
#include "net/packet.hpp"
#include "p4ir/program.hpp"
#include "sim/drop_reason.hpp"
#include "sim/fields.hpp"
#include "sim/runtime_table.hpp"

namespace dejavu::sim {

/// Everything one injected packet produced.
struct SwitchOutput {
  struct Emitted {
    std::uint16_t port = 0;
    net::Packet packet;
  };
  struct CpuPunt {
    std::uint16_t in_port = 0;
    net::Packet packet;
    /// The generation the packet was stamped with at first ingress; a
    /// control plane reinjecting the punt passes it back as the stamp
    /// so the packet finishes on the chain generation it started on.
    std::uint32_t epoch = 0;
  };

  std::vector<Emitted> out;
  std::vector<CpuPunt> to_cpu;
  bool dropped = false;
  /// Canonical code for the drop (kNone when delivered/punted); the
  /// string carries the per-packet detail for humans. Match on the
  /// code, not the string.
  DropCode drop_code = DropCode::kNone;
  std::string drop_reason;

  void set_drop(DropCode code, std::string reason) {
    dropped = true;
    drop_code = code;
    drop_reason = std::move(reason);
  }

  /// The chain generation every table lookup of this packet used
  /// (stamped at first ingress, honored across resubmissions,
  /// recirculations, and CPU reinjection — §11 per-packet consistency).
  std::uint32_t epoch = 0;

  std::uint32_t resubmissions = 0;
  std::uint32_t recirculations = 0;
  /// The loopback / dedicated-recirc port taken by each recirculation,
  /// in order (size == recirculations). Lets observers attribute
  /// recirculation load to pipelines without parsing the trace.
  std::vector<std::uint16_t> recirc_ports;
  std::vector<asic::PipeletId> pipelets_visited;
  std::vector<std::string> trace;

  bool delivered() const { return !out.empty(); }
};

class DataPlane {
 public:
  /// `program` must outlive the data plane. Pipelet control blocks are
  /// found by merge::pipelet_control_name; unnamed pipelets simply
  /// forward.
  DataPlane(const p4ir::Program& program, const p4ir::TupleIdTable& ids,
            asic::SwitchConfig config);

  const asic::SwitchConfig& config() const { return config_; }
  const p4ir::Program& program() const { return *program_; }
  const p4ir::TupleIdTable& ids() const { return *ids_; }
  std::optional<std::uint16_t> mirror_port() const { return mirror_port_; }

  /// Table handle for the control plane. Searches all pipelet controls
  /// and returns every instance (an NF's table exists once per pipelet
  /// hosting it; framework check tables exist per pipelet too).
  std::vector<RuntimeTable*> tables_named(const std::string& table);

  /// Single-instance lookup within one pipelet's control block.
  RuntimeTable* table_in(const std::string& control_name,
                         const std::string& table);

  /// Register array state (per control block); nullptr when unknown.
  /// Exposed for control-plane reads and tests.
  std::vector<std::uint64_t>* register_array(const std::string& control_name,
                                             const std::string& reg);

  /// Inject a packet on a front-panel port and run it to completion.
  /// `from_cpu` marks control-plane reinjection (Fig. 4's session-miss
  /// flow), which may enter on any port, including loopback ports.
  /// `stamp` carries a punted packet's original epoch back in (fresh
  /// ingress stamps the current epoch); a stamp below min_live_epoch()
  /// — its generation already garbage-collected — drops the packet
  /// with DropCode::kUpdateDrained.
  SwitchOutput process(net::Packet packet, std::uint16_t in_port,
                       bool from_cpu = false,
                       std::optional<std::uint32_t> stamp = std::nullopt);

  /// The chain generation stamped onto packets at first ingress; the
  /// single version gate a live update flips (§11).
  std::uint32_t epoch() const { return epoch_; }
  void set_epoch(std::uint32_t epoch) { epoch_ = epoch; }

  /// Oldest generation still allowed to finish; packets stamped below
  /// it are drained (dropped with kUpdateDrained) on reinjection.
  std::uint32_t min_live_epoch() const { return min_live_epoch_; }
  /// Snapshot restore only; updates raise it through gc_epochs().
  void set_min_live_epoch(std::uint32_t epoch) { min_live_epoch_ = epoch; }

  /// Packets punted to the CPU and not yet reinjected, by stamped
  /// epoch — the in-flight population a live update must drain.
  const std::map<std::uint32_t, std::uint64_t>& punts_outstanding() const {
    return punts_outstanding_;
  }
  /// Outstanding punts stamped strictly below `epoch`.
  std::uint64_t punts_outstanding_below(std::uint32_t epoch) const;

  /// Force-forget outstanding punts stamped <= max_epoch (the drain
  /// phase's last resort for punts the control plane abandoned).
  /// Returns how many were flushed.
  std::uint64_t flush_stale_punts(std::uint32_t max_epoch);

  /// Garbage-collect every entry retired before `min_live` across all
  /// tables and raise min_live_epoch(). Returns entries removed.
  std::size_t gc_epochs(std::uint32_t min_live);

  /// Per-register-bank generation tag: bumped when a live update
  /// applies a bank's flip-time writes, so crash recovery can tell
  /// applied banks from untouched ones (0 = never updated).
  std::uint32_t register_epoch(const std::string& control_name,
                               const std::string& reg) const;
  void set_register_epoch(const std::string& control_name,
                          const std::string& reg, std::uint32_t epoch);
  const std::map<std::pair<std::string, std::string>, std::uint32_t>&
  register_epochs() const {
    return register_epochs_;
  }

  /// Is `port` a loopback front-panel port or a dedicated
  /// recirculation port?
  bool loops_back(std::uint16_t port) const;

  /// Pipeline that owns `port` (front-panel or dedicated recirc).
  std::uint32_t pipeline_of(std::uint16_t port) const;

  /// Pass cap; seeded from SwitchConfig::max_pipeline_passes().
  std::uint32_t max_passes() const { return max_passes_; }
  void set_max_passes(std::uint32_t n) { max_passes_ = n; }
  /// Mirror copies go to this port when the mirror flag is raised.
  void set_mirror_port(std::uint16_t port) { mirror_port_ = port; }

  /// Administratively (or by fault injection) mark a port down:
  /// packets whose egress decision or recirculation lands on a down
  /// port are dropped with DropCode::kPortDown. Ingress on a down
  /// port is refused the same way.
  void set_port_down(std::uint16_t port, bool down = true);
  bool is_port_down(std::uint16_t port) const {
    return down_ports_.count(port) > 0;
  }
  const std::set<std::uint16_t>& down_ports() const { return down_ports_; }

  /// Per-port packet/byte counters, as a switch OS would expose them.
  /// Loopback and dedicated recirculation ports accumulate the
  /// recirculating traffic — the §4 measurement point.
  struct PortCounters {
    std::uint64_t rx_packets = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t tx_packets = 0;
    std::uint64_t tx_bytes = 0;

    bool operator==(const PortCounters&) const = default;
    PortCounters& operator+=(const PortCounters& o) {
      rx_packets += o.rx_packets;
      rx_bytes += o.rx_bytes;
      tx_packets += o.tx_packets;
      tx_bytes += o.tx_bytes;
      return *this;
    }
  };
  const PortCounters& port_counters(std::uint16_t port) const;
  /// Mutable per-port counters — engine plumbing for the compiled fast
  /// path (sim::CompiledPipeline), which must keep tx/rx/recirculation
  /// accounting bit-identical to process() while bypassing it.
  PortCounters& counters_for(std::uint16_t port) { return counters_[port]; }
  /// Record one CPU punt in the outstanding-punt ledger (§11 drain
  /// accounting) — same engine plumbing as counters_for().
  void note_punt(std::uint32_t epoch) { ++punts_outstanding_[epoch]; }
  /// Every port with traffic so far (ports never touched are absent).
  const std::map<std::uint16_t, PortCounters>& all_port_counters() const {
    return counters_;
  }
  void reset_counters();

 private:
  void run_pipelet(const asic::PipeletId& id, net::Packet& packet,
                   StandardMetadata& meta, SwitchOutput& out);
  void execute_action(const p4ir::ControlBlock& control,
                      const ActionCall& call, FieldView& view,
                      SwitchOutput& out);
  void emit(net::Packet packet, std::uint16_t port, SwitchOutput& out);

  const p4ir::Program* program_;
  const p4ir::TupleIdTable* ids_;
  asic::SwitchConfig config_;
  std::uint32_t max_passes_ = 64;
  std::uint32_t epoch_ = 0;
  std::uint32_t min_live_epoch_ = 0;
  std::map<std::uint32_t, std::uint64_t> punts_outstanding_;
  std::map<std::pair<std::string, std::string>, std::uint32_t>
      register_epochs_;
  std::optional<std::uint16_t> mirror_port_;
  std::set<std::uint16_t> down_ports_;
  // control name -> table name -> runtime table
  std::map<std::string, std::map<std::string, RuntimeTable>> tables_;
  // control name -> register name -> cells
  std::map<std::string, std::map<std::string, std::vector<std::uint64_t>>>
      registers_;
  mutable std::map<std::uint16_t, PortCounters> counters_;
};

}  // namespace dejavu::sim
