// The §4 analytic recirculation model. One loopback port of capacity T
// serves k generations of recirculating traffic; the feedback queue
// sheds load proportionally, so each generation survives with factor
// s, where s is the root of
//
//     s + s^2 + ... + s^k = 1
//
// and the effective throughput after k recirculations is s^k * T.
// This reproduces the paper's closed forms exactly: k=1 -> T (s=1),
// k=2 -> x = 0.62T and exit 0.38T, k=3 -> 0.16T, and Fig. 8(a)'s
// super-linear decay.
#pragma once

#include <cstdint>
#include <vector>

namespace dejavu::sim {

/// The per-pass survival factor s for k recirculations (k >= 0).
/// k <= 1 gives s = 1 (no contention on the loopback port).
double loopback_survival(std::uint32_t recirculations);

/// Effective throughput of traffic needing `recirculations` loops
/// through one loopback port of capacity `capacity_gbps`, when the
/// injected load equals the capacity (the Fig. 7/8 setting).
double recirc_throughput_gbps(double capacity_gbps,
                              std::uint32_t recirculations);

/// Per-generation throughputs x_1..x_k (x_i = s^i * T): the load each
/// recirculation generation carries across the loopback port.
std::vector<double> generation_throughputs_gbps(
    double capacity_gbps, std::uint32_t recirculations);

/// Capacity split of §4: with m of n ports in loopback mode, the
/// fraction of ASIC capacity available to external traffic...
double external_capacity_fraction(std::uint32_t n_ports,
                                  std::uint32_t m_loopback);

/// ...and the fraction of that external traffic that can recirculate
/// once without loss: min(1, m/(n-m)).
double single_recirc_fraction(std::uint32_t n_ports,
                              std::uint32_t m_loopback);

}  // namespace dejavu::sim
