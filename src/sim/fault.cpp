#include "sim/fault.hpp"

#include <random>

#include "sfc/header.hpp"

namespace dejavu::sim {

namespace {

std::size_t sfc_offset(const net::Packet& packet) {
  return packet.has_sfc_header() ? sfc::kSfcHeaderSize : 0;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWriteFail:
      return "write-fail";
    case FaultKind::kWriteTimeout:
      return "write-timeout";
    case FaultKind::kEvictEntry:
      return "evict-entry";
    case FaultKind::kRecircPortDown:
      return "recirc-port-down";
    case FaultKind::kRegisterCorrupt:
      return "register-corrupt";
  }
  return "unknown";
}

std::string FaultEvent::to_string() const {
  std::string s = fault_kind_name(kind);
  if (kind == FaultKind::kWriteFail || kind == FaultKind::kWriteTimeout) {
    s += " op=" + std::to_string(op_index) + " count=" + std::to_string(count);
    return s;
  }
  s += " bucket=" + std::to_string(flow_bucket) +
       " pkt=" + std::to_string(packet_index);
  if (kind == FaultKind::kEvictEntry) s += " table=" + table;
  if (kind == FaultKind::kRegisterCorrupt)
    s += " reg=" + control + "." + reg;
  if (kind == FaultKind::kRecircPortDown)
    s += " pipeline=" + std::to_string(pipeline);
  return s;
}

FaultProfile FaultProfile::fig2_mixed() {
  FaultProfile p;
  p.evict_tables = {"LB.lb_session"};  // qualified name in the merge
  p.pipelines = {1};  // the Fig. 9 loopback pipeline
  // Fig. 2's NFs are stateless in the register sense; candidates stay
  // empty so corruption events are only generated for targets that
  // declare registers (e.g. the rate limiter).
  return p;
}

FaultPlan FaultPlan::from_seed(std::uint64_t seed,
                               const FaultProfile& profile) {
  FaultPlan plan;
  plan.seed = seed;
  std::mt19937_64 rng(seed);
  // rng() % n, not uniform_int_distribution: the distribution's
  // mapping is implementation-defined and the plan must be stable.
  auto pick = [&](std::uint32_t n) -> std::uint32_t {
    return n == 0 ? 0 : static_cast<std::uint32_t>(rng() % n);
  };
  auto packet_slot = [&](FaultEvent& ev) {
    ev.flow_bucket = pick(kFlowBuckets);
    const std::uint32_t span =
        profile.max_packet_index > profile.min_packet_index
            ? profile.max_packet_index - profile.min_packet_index
            : 1;
    ev.packet_index = profile.min_packet_index + pick(span);
  };

  for (std::uint32_t i = 0; i < profile.write_fails; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kWriteFail;
    ev.op_index = pick(profile.max_op_index);
    ev.count = 1 + pick(profile.max_fail_count);
    plan.events.push_back(ev);
  }
  for (std::uint32_t i = 0; i < profile.write_timeouts; ++i) {
    FaultEvent ev;
    ev.kind = FaultKind::kWriteTimeout;
    ev.op_index = pick(profile.max_op_index);
    ev.count = 1 + pick(profile.max_fail_count);
    plan.events.push_back(ev);
  }
  if (!profile.evict_tables.empty()) {
    for (std::uint32_t i = 0; i < profile.evictions; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kEvictEntry;
      packet_slot(ev);
      ev.table = profile.evict_tables[pick(
          static_cast<std::uint32_t>(profile.evict_tables.size()))];
      plan.events.push_back(ev);
    }
  }
  if (!profile.pipelines.empty()) {
    for (std::uint32_t i = 0; i < profile.recirc_downs; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kRecircPortDown;
      packet_slot(ev);
      ev.pipeline = profile.pipelines[pick(
          static_cast<std::uint32_t>(profile.pipelines.size()))];
      plan.events.push_back(ev);
    }
  }
  if (!profile.corrupt_registers.empty()) {
    for (std::uint32_t i = 0; i < profile.register_corruptions; ++i) {
      FaultEvent ev;
      ev.kind = FaultKind::kRegisterCorrupt;
      packet_slot(ev);
      const auto& target = profile.corrupt_registers[pick(
          static_cast<std::uint32_t>(profile.corrupt_registers.size()))];
      ev.control = target.first;
      ev.reg = target.second;
      plan.events.push_back(ev);
    }
  }
  return plan;
}

std::vector<const FaultEvent*> FaultPlan::packet_events(
    std::uint32_t flow_bucket, std::uint32_t packet_index) const {
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultKind::kWriteFail ||
        ev.kind == FaultKind::kWriteTimeout) {
      continue;
    }
    if (ev.flow_bucket == flow_bucket && ev.packet_index == packet_index) {
      out.push_back(&ev);
    }
  }
  return out;
}

std::vector<const FaultEvent*> FaultPlan::write_events() const {
  std::vector<const FaultEvent*> out;
  for (const FaultEvent& ev : events) {
    if (ev.kind == FaultKind::kWriteFail ||
        ev.kind == FaultKind::kWriteTimeout) {
      out.push_back(&ev);
    }
  }
  return out;
}

std::string FaultPlan::to_string() const {
  std::string s =
      "fault plan (seed " + std::to_string(seed) + "): " +
      std::to_string(events.size()) + " events";
  for (const FaultEvent& ev : events) {
    s += "\n  " + ev.to_string();
  }
  return s;
}

FaultInjector::FaultInjector(const FaultPlan& plan) {
  for (const FaultEvent* ev : plan.write_events()) {
    write_events_.push_back(*ev);
  }
  reset();
}

void FaultInjector::reset() {
  budget_.clear();
  for (const FaultEvent& ev : write_events_) {
    auto [it, inserted] = budget_.try_emplace(ev.op_index, ev.kind, ev.count);
    if (!inserted) it->second.second += ev.count;
  }
}

void FaultInjector::on_write(std::uint32_t op_index) {
  auto it = budget_.find(op_index);
  if (it == budget_.end() || it->second.second == 0) return;
  --it->second.second;
  ++fired_;
  const bool timeout = it->second.first == FaultKind::kWriteTimeout;
  throw TransientWriteError(
      std::string(timeout ? "injected write timeout" : "injected write failure") +
      " at op " + std::to_string(op_index));
}

std::string InvariantViolations::to_string() const {
  return "unattributed_drops=" + std::to_string(unattributed_drops) +
         " corrupt_packets=" + std::to_string(corrupt_packets) +
         " metadata_leaks=" + std::to_string(metadata_leaks) +
         " forwarding_loops=" + std::to_string(forwarding_loops);
}

ChaosTarget::ChaosTarget(std::unique_ptr<ReplayTarget> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {
  for (const FaultEvent& ev : plan_.events) {
    if (ev.kind == FaultKind::kEvictEntry) evict_watch_.insert(ev.table);
  }
}

InvariantViolations ChaosTarget::check_output(const SwitchOutput& out) {
  InvariantViolations v;
  if (out.dropped && out.drop_code == DropCode::kNone) {
    ++v.unattributed_drops;
  }
  if (out.drop_code == DropCode::kMaxPassesExceeded) {
    ++v.forwarding_loops;
  }
  for (const SwitchOutput::Emitted& e : out.out) {
    if (e.packet.has_sfc_header()) {
      ++v.metadata_leaks;
      continue;  // ipv4 offset shifts; the leak is the finding
    }
    if (auto ip = e.packet.ipv4()) {
      if (ip->checksum != ip->compute_checksum()) ++v.corrupt_packets;
    }
  }
  return v;
}

void ChaosTarget::learn_new_entries(const std::string& table,
                                    const net::FiveTuple& tuple) {
  auto& known = known_keys_[table];
  for (RuntimeTable* t : dataplane().tables_named(table)) {
    for (const RuntimeTable::ExactEntry& e : t->exact_entries()) {
      if (known.insert(e.key).second) {
        owned_keys_[table][tuple].insert(e.key);
      }
    }
  }
}

void ChaosTarget::apply_evict(const FaultEvent& ev,
                              const net::FiveTuple& tuple) {
  auto table_it = owned_keys_.find(ev.table);
  if (table_it == owned_keys_.end()) return;
  auto flow_it = table_it->second.find(tuple);
  if (flow_it == table_it->second.end()) return;
  std::uint64_t removed = 0;
  for (const std::vector<std::uint64_t>& key : flow_it->second) {
    for (RuntimeTable* t : dataplane().tables_named(ev.table)) {
      if (t->remove_exact(key)) ++removed;
    }
    known_keys_[ev.table].erase(key);
  }
  table_it->second.erase(flow_it);
  if (removed > 0) {
    faults_applied_[fault_kind_name(FaultKind::kEvictEntry)] += 1;
  }
}

SwitchOutput ChaosTarget::inject(net::Packet packet, std::uint16_t in_port) {
  auto tuple = packet.five_tuple(sfc_offset(packet));
  std::vector<const FaultEvent*> events;
  std::vector<std::uint16_t> downed_ports;
  if (tuple) {
    const std::uint32_t index = flow_index_[*tuple]++;
    const std::uint32_t bucket =
        tuple->session_hash() % FaultPlan::kFlowBuckets;
    events = plan_.packet_events(bucket, index);
    DataPlane& dp = dataplane();
    for (const FaultEvent* ev : events) {
      switch (ev->kind) {
        case FaultKind::kEvictEntry:
          apply_evict(*ev, *tuple);
          break;
        case FaultKind::kRecircPortDown: {
          // Down every loopback/recirc port of the pipeline for this
          // one injection; restored below so other flows never see it.
          const auto& spec = dp.config().spec();
          for (std::uint32_t p = 0; p < spec.total_ports(); ++p) {
            if (spec.pipeline_of_port(p) == ev->pipeline &&
                dp.config().is_loopback(p) && !dp.is_port_down(p)) {
              dp.set_port_down(static_cast<std::uint16_t>(p));
              downed_ports.push_back(static_cast<std::uint16_t>(p));
            }
          }
          const std::uint16_t dedicated =
              static_cast<std::uint16_t>(spec.total_ports() + ev->pipeline);
          if (!dp.is_port_down(dedicated)) {
            dp.set_port_down(dedicated);
            downed_ports.push_back(dedicated);
          }
          if (!downed_ports.empty()) {
            faults_applied_[fault_kind_name(FaultKind::kRecircPortDown)] += 1;
          }
          break;
        }
        case FaultKind::kRegisterCorrupt: {
          auto* arr = dp.register_array(ev->control, ev->reg);
          if (arr != nullptr && !arr->empty()) {
            (*arr)[tuple->session_hash() % arr->size()] ^= 0xdeadbeefULL;
            faults_applied_[fault_kind_name(FaultKind::kRegisterCorrupt)] += 1;
          }
          break;
        }
        default:
          break;
      }
    }
  }

  SwitchOutput out = inner_->inject(std::move(packet), in_port);

  for (std::uint16_t p : downed_ports) {
    dataplane().set_port_down(p, /*down=*/false);
  }
  if (tuple) {
    // Attribute entries this injection created (e.g. the LB session
    // the control plane just learned) to the flow, for later eviction.
    for (const std::string& table : evict_watch_) {
      learn_new_entries(table, *tuple);
    }
  }
  violations_ += check_output(out);
  return out;
}

TargetFactory chaos_factory(TargetFactory inner, FaultPlan plan,
                            std::vector<ChaosTarget*>* shims) {
  return [inner = std::move(inner), plan = std::move(plan),
          shims](std::uint32_t index) -> std::unique_ptr<ReplayTarget> {
    auto target = std::make_unique<ChaosTarget>(inner(index), plan);
    if (shims != nullptr) shims->push_back(target.get());
    return target;
  };
}

}  // namespace dejavu::sim
