// The canonical drop vocabulary: every way the behavioral data plane
// (or the symbolic explorer's model of it) can discard a packet gets a
// stable DropCode. The human-readable drop_reason string stays free to
// carry per-packet detail (port numbers, pass counts); tests, the
// chaos invariants, and operator tooling match on the code.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace dejavu::sim {

enum class DropCode : std::uint8_t {
  kNone = 0,              ///< not dropped
  kInvalidIngressPort,    ///< injected on a port the target does not have
  kRecircPortExternal,    ///< external traffic on a dedicated recirc port
  kLoopbackPortExternal,  ///< external traffic on a loopback-mode port
  kIngressDrop,           ///< an ingress-pipe table raised the drop flag
  kNoEgressDecision,      ///< ingress pass ended without an egress_spec
  kInvalidEgressSpec,     ///< egress_spec names a nonexistent port
  kEgressDrop,            ///< an egress-pipe table raised the drop flag
  kPortDown,              ///< egress or recirculation port is down (fault)
  kMaxPassesExceeded,     ///< pipeline-pass budget exhausted (routing loop)
  kUpdateDrained,         ///< completed on a retired epoch by an update drain
};

/// Every code except kNone, for exhaustive table tests.
inline constexpr DropCode kAllDropCodes[] = {
    DropCode::kInvalidIngressPort, DropCode::kRecircPortExternal,
    DropCode::kLoopbackPortExternal, DropCode::kIngressDrop,
    DropCode::kNoEgressDecision, DropCode::kInvalidEgressSpec,
    DropCode::kEgressDrop, DropCode::kPortDown,
    DropCode::kMaxPassesExceeded, DropCode::kUpdateDrained,
};

/// Stable kebab-case slug (JSON output, counters keyed by code).
const char* drop_code_name(DropCode code);

/// Inverse of drop_code_name (nullopt for unknown slugs); keeps the
/// code <-> slug mapping honest in both directions.
std::optional<DropCode> drop_code_from_name(const std::string& name);

/// Generic one-line description of the code (the message table; the
/// per-packet drop_reason string adds instance detail on top).
const char* drop_code_description(DropCode code);

}  // namespace dejavu::sim
