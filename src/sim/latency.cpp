#include "sim/latency.hpp"

namespace dejavu::sim {

double LatencyModel::traversal_ns(const place::Traversal& traversal,
                                  RecircMode mode) const {
  double ns = base_ns();
  ns += traversal.recirculations * recirc_ns(mode);
  // A resubmission re-traverses the ingress parser and MAUs without
  // touching the traffic manager or SerDes.
  ns += traversal.resubmissions * (recirc_ns(RecircMode::kOnChip) / 3.0);
  return ns;
}

}  // namespace dejavu::sim
