#include "sim/fields.hpp"

#include "sim/bits.hpp"

namespace dejavu::sim {

namespace {

/// standard_metadata fields are backed by the struct, not the packet.
std::optional<std::uint64_t> read_meta(const StandardMetadata& m,
                                       const std::string& field) {
  if (field == "ingress_port") return m.ingress_port;
  if (field == "egress_spec") return m.egress_spec;
  if (field == "egress_port") return m.egress_port;
  if (field == "packet_length") return m.packet_length;
  if (field == "resubmit_flag") return m.resubmit_flag ? 1 : 0;
  if (field == "recirculate_flag") return m.recirculate_flag ? 1 : 0;
  if (field == "drop_flag") return m.drop_flag ? 1 : 0;
  if (field == "mirror_flag") return m.mirror_flag ? 1 : 0;
  if (field == "to_cpu_flag") return m.to_cpu_flag ? 1 : 0;
  if (field == "epoch") return m.epoch;
  return std::nullopt;
}

bool write_meta(StandardMetadata& m, const std::string& field,
                std::uint64_t v) {
  if (field == "ingress_port") {
    m.ingress_port = static_cast<std::uint16_t>(v & 0x1ff);
  } else if (field == "egress_spec") {
    m.egress_spec = static_cast<std::uint16_t>(v & 0x1ff);
  } else if (field == "egress_port") {
    m.egress_port = static_cast<std::uint16_t>(v & 0x1ff);
  } else if (field == "packet_length") {
    m.packet_length = static_cast<std::uint32_t>(v);
  } else if (field == "resubmit_flag") {
    m.resubmit_flag = v != 0;
  } else if (field == "recirculate_flag") {
    m.recirculate_flag = v != 0;
  } else if (field == "drop_flag") {
    m.drop_flag = v != 0;
  } else if (field == "mirror_flag") {
    m.mirror_flag = v != 0;
  } else if (field == "to_cpu_flag") {
    m.to_cpu_flag = v != 0;
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::optional<std::uint64_t> FieldView::read(const std::string& dotted) const {
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return std::nullopt;
  if (ref->header == "standard_metadata") {
    return read_meta(meta_, ref->field);
  }
  if (ref->header == "local") {
    auto it = locals_.find(ref->field);
    if (it == locals_.end()) return std::nullopt;
    return it->second;
  }
  auto base = parsed_.offset_of(ref->header);
  if (!base) return std::nullopt;
  const p4ir::HeaderType* type = program_.find_header_type(ref->header);
  if (type == nullptr) return std::nullopt;
  auto bit_off = type->bit_offset(ref->field);
  const p4ir::Field* field = type->find_field(ref->field);
  if (!bit_off || field == nullptr) return std::nullopt;
  const std::size_t abs_bit = std::size_t{*base} * 8 + *bit_off;
  auto bytes = packet_.data().view();
  if (abs_bit + field->bits > bytes.size() * 8) return std::nullopt;
  return read_bits(bytes, abs_bit, field->bits);
}

bool FieldView::write(const std::string& dotted, std::uint64_t value) {
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return false;
  if (ref->header == "standard_metadata") {
    return write_meta(meta_, ref->field, value);
  }
  if (ref->header == "local") {
    locals_[ref->field] = value;
    return true;
  }
  auto base = parsed_.offset_of(ref->header);
  if (!base) return false;  // absent header: deliberate no-op
  const p4ir::HeaderType* type = program_.find_header_type(ref->header);
  if (type == nullptr) return false;
  auto bit_off = type->bit_offset(ref->field);
  const p4ir::Field* field = type->find_field(ref->field);
  if (!bit_off || field == nullptr) return false;
  const std::size_t abs_bit = std::size_t{*base} * 8 + *bit_off;
  auto bytes = packet_.data().mutable_view();
  if (abs_bit + field->bits > bytes.size() * 8) return false;
  write_bits(bytes, abs_bit, field->bits,
             mask_to_width(value, field->bits));
  return true;
}

void FieldView::reparse(const p4ir::TupleIdTable& ids) {
  parsed_ = run_parser(program_, ids, packet_);
}

}  // namespace dejavu::sim
