#include "sim/queue_sim.hpp"

#include <algorithm>
#include <deque>
#include <random>
#include <vector>

namespace dejavu::sim {

namespace {

struct Pkt {
  std::uint32_t passes_left;  // passes through the loopback port
  std::uint64_t born;
};

}  // namespace

QueueSimResult simulate_recirculation(const QueueSimParams& params) {
  QueueSimResult result;
  result.offered_gbps = params.capacity_gbps;

  if (params.recirculations == 0) {
    // No loopback involvement: line-rate delivery, zero extra delay.
    result.delivered_gbps = params.capacity_gbps;
    return result;
  }

  std::mt19937_64 rng(params.seed);
  std::deque<Pkt> queue_b;  // the loopback port's egress queue

  std::uint64_t injected = 0, dropped = 0, delivered = 0;
  std::uint64_t depth_accum = 0;
  std::uint64_t delay_accum = 0;
  std::uint64_t measured_slots = 0;

  for (std::uint64_t slot = 0; slot < params.slots; ++slot) {
    const bool measuring = slot >= params.warmup_slots;

    // Port B transmits one packet; the output either re-enters B's
    // queue (next pass) or exits via port A (which is uncongested:
    // exit rate never exceeds one packet per slot).
    std::vector<Pkt> arrivals;
    if (!queue_b.empty()) {
      Pkt p = queue_b.front();
      queue_b.pop_front();
      if (--p.passes_left == 0) {
        if (measuring) {
          ++delivered;
          const std::uint64_t ideal = params.recirculations + 1;
          const std::uint64_t took = slot - p.born + 1;
          delay_accum += took > ideal ? took - ideal : 0;
        }
      } else {
        arrivals.push_back(p);
      }
    }

    // One fresh line-rate packet arrives per slot, contending with the
    // recirculated arrival for the loopback queue.
    arrivals.push_back(Pkt{params.recirculations, slot});
    if (measuring) ++injected;

    std::shuffle(arrivals.begin(), arrivals.end(), rng);
    for (Pkt& p : arrivals) {
      if (queue_b.size() < params.queue_depth) {
        queue_b.push_back(p);
      } else if (measuring) {
        ++dropped;
      }
    }

    if (measuring) {
      depth_accum += queue_b.size();
      ++measured_slots;
    }
  }

  if (measured_slots > 0) {
    result.delivered_gbps = params.capacity_gbps *
                            static_cast<double>(delivered) / measured_slots;
    result.mean_queue_depth =
        static_cast<double>(depth_accum) / measured_slots;
  }
  if (injected > 0) {
    result.loss_fraction = static_cast<double>(dropped) / injected;
  }
  if (delivered > 0) {
    result.mean_extra_slots = static_cast<double>(delay_accum) / delivered;
  }
  return result;
}

}  // namespace dejavu::sim
