// Runtime match-action tables: the installable state behind each IR
// table definition. Exact tables use a hash map; ternary and LPM
// tables use the TCAM model (LPM entries become ternary entries whose
// priority is the prefix length).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/tcam.hpp"
#include "p4ir/table.hpp"

namespace dejavu::sim {

/// A bound action: name + runtime arguments (per-entry action data).
struct ActionCall {
  std::string action;
  std::map<std::string, std::uint64_t> args;

  bool operator==(const ActionCall&) const = default;
};

/// The result of a lookup: hit/miss plus the action to run (the
/// table's default action on miss; may be empty).
struct LookupResult {
  bool hit = false;
  ActionCall action;
};

class RuntimeTable {
 public:
  explicit RuntimeTable(const p4ir::Table& def);

  const p4ir::Table& def() const { return *def_; }

  /// One installed exact entry (state export, §7 service upgrade /
  /// failure handling).
  struct ExactEntry {
    std::vector<std::uint64_t> key;
    ActionCall action;
  };

  /// Install an exact-match entry: one value per key component.
  /// Throws std::invalid_argument on arity mismatch, table kind
  /// mismatch, or table-full.
  void add_exact(const std::vector<std::uint64_t>& key, ActionCall action);

  /// Install a ternary entry (value/mask per component, priority).
  /// Returns the entry's handle (usable with erase_ternary).
  std::size_t add_ternary(const std::vector<net::TernaryField>& key,
                          std::int32_t priority, ActionCall action);

  /// Install an LPM entry on the (single) LPM key component:
  /// value/prefix_len, with exact values for any other components.
  /// Returns the entry's handle (usable with erase_ternary).
  std::size_t add_lpm(std::uint64_t value, std::uint8_t prefix_len,
                      ActionCall action);

  /// Remove one exact entry; false when the key is not installed
  /// (entry eviction and transactional rollback).
  bool remove_exact(const std::vector<std::uint64_t>& key);

  /// Remove one ternary/LPM entry by handle; false when absent.
  bool erase_ternary(std::size_t handle);

  /// The installed entry for `key`, or nullptr (exact tables only).
  const ExactEntry* find_exact(const std::vector<std::uint64_t>& key) const;

  /// Look up the key values in key-component order. Missing fields in
  /// the packet are the caller's concern (pass nullopt -> miss).
  LookupResult lookup(
      const std::vector<std::optional<std::uint64_t>>& key) const;

  std::size_t entry_count() const { return size_; }
  void clear();

  /// Per-table hit/miss counters (direct counters in P4 terms),
  /// incremented by lookup().
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  /// State export (§7 service upgrade / failure handling): enumerate
  /// installed entries.
  std::vector<ExactEntry> exact_entries() const;
  /// Ternary/LPM entries (empty for exact tables).
  const std::vector<net::Tcam<ActionCall>::Entry>& ternary_entries() const;

 private:
  const p4ir::Table* def_;
  std::size_t size_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  // Exact storage: concatenated key string -> (key values, action).
  std::unordered_map<std::string, ExactEntry> exact_;
  // Ternary/LPM storage.
  std::optional<net::Tcam<ActionCall>> tcam_;
};

}  // namespace dejavu::sim
