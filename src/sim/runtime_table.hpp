// Runtime match-action tables: the installable state behind each IR
// table definition. Exact tables use a hash map; ternary and LPM
// tables use the TCAM model (LPM entries become ternary entries whose
// priority is the prefix length).
//
// Every installed entry carries an epoch window [from, to]: the range
// of chain generations it is visible to. A hitless live update (§11)
// installs the next generation shadowed (window [e+1, open]) next to
// the retiring one (capped at [.., e]); lookups filter by the packet's
// stamped epoch, so a packet sees exactly one generation — old or new,
// never a blend. Entries installed without a window get [0, open] and
// behave exactly as before.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/tcam.hpp"
#include "p4ir/table.hpp"

namespace dejavu::sim {

/// Epoch value meaning "still live" (an un-retired entry's window.to).
inline constexpr std::uint32_t kEpochOpen = 0xffffffff;

/// The half-open-ended generation range an entry is visible to.
struct EpochWindow {
  std::uint32_t from = 0;
  std::uint32_t to = kEpochOpen;

  bool contains(std::uint32_t epoch) const {
    return from <= epoch && epoch <= to;
  }
  bool open() const { return to == kEpochOpen; }
  bool well_formed() const { return from <= to; }
  bool overlaps(const EpochWindow& o) const {
    return from <= o.to && o.from <= to;
  }
  /// True for the default [0, open] window (entries that predate any
  /// live update); snapshots omit it to keep texts stable.
  bool is_default() const { return from == 0 && to == kEpochOpen; }
  bool operator==(const EpochWindow&) const = default;
};

/// A bound action: name + runtime arguments (per-entry action data).
struct ActionCall {
  std::string action;
  std::map<std::string, std::uint64_t> args;

  bool operator==(const ActionCall&) const = default;
};

/// The result of a lookup: hit/miss plus the action to run (the
/// table's default action on miss; may be empty).
struct LookupResult {
  bool hit = false;
  ActionCall action;
};

class RuntimeTable {
 public:
  explicit RuntimeTable(const p4ir::Table& def);

  const p4ir::Table& def() const { return *def_; }

  /// One installed exact entry (state export, §7 service upgrade /
  /// failure handling).
  struct ExactEntry {
    std::vector<std::uint64_t> key;
    ActionCall action;
    EpochWindow window;
  };

  /// Install an exact-match entry: one value per key component.
  /// Reinstalling the same key with the same window overwrites the
  /// action; a window overlapping a different installed version is
  /// refused (that would make two generations visible to one packet).
  /// Throws std::invalid_argument on arity mismatch, table kind
  /// mismatch, window overlap, or table-full.
  void add_exact(const std::vector<std::uint64_t>& key, ActionCall action,
                 EpochWindow window = {});

  /// Install a ternary entry (value/mask per component, priority).
  /// Returns the entry's handle (usable with erase_ternary).
  std::size_t add_ternary(const std::vector<net::TernaryField>& key,
                          std::int32_t priority, ActionCall action,
                          EpochWindow window = {});

  /// Install an LPM entry on the (single) LPM key component:
  /// value/prefix_len, with exact values for any other components.
  /// Returns the entry's handle (usable with erase_ternary).
  std::size_t add_lpm(std::uint64_t value, std::uint8_t prefix_len,
                      ActionCall action, EpochWindow window = {});

  /// The ternary key an LPM install expands to (so callers can diff or
  /// retire LPM entries without re-deriving the wildcard layout).
  std::vector<net::TernaryField> lpm_key(std::uint64_t value,
                                         std::uint8_t prefix_len) const;

  /// Remove the live (open-window) version of an exact entry; false
  /// when no live version is installed (entry eviction and
  /// transactional rollback).
  bool remove_exact(const std::vector<std::uint64_t>& key);

  /// Remove the specific version whose window equals `window` exactly
  /// (undo of a shadow install); false when absent.
  bool remove_exact_version(const std::vector<std::uint64_t>& key,
                            EpochWindow window);

  /// Remove one ternary/LPM entry by handle; false when absent.
  bool erase_ternary(std::size_t handle);

  /// Cap the live version's window at `last_epoch` (it stops matching
  /// packets stamped later). False when there is no live version or
  /// the cap would make the window malformed.
  bool retire_exact(const std::vector<std::uint64_t>& key,
                    std::uint32_t last_epoch);
  /// Undo of retire_exact: re-open the version capped at `last_epoch`.
  /// False when absent or re-opening would overlap another version.
  bool unretire_exact(const std::vector<std::uint64_t>& key,
                      std::uint32_t last_epoch);

  /// Ternary/LPM analogues, addressed by handle.
  bool retire_ternary(std::size_t handle, std::uint32_t last_epoch);
  bool unretire_ternary(std::size_t handle, std::uint32_t last_epoch);

  /// The live (open-window) ternary/LPM entry matching key+priority
  /// exactly, or nullopt (how a retire addresses an entry installed by
  /// an earlier generation).
  std::optional<std::size_t> find_ternary(
      const std::vector<net::TernaryField>& key, std::int32_t priority) const;

  /// The window of a ternary/LPM entry ([0, open] when never tagged).
  EpochWindow ternary_window(std::size_t handle) const;

  /// Drop every version retired before `min_live` (window.to <
  /// min_live): generation garbage collection after an update's drain
  /// completes. Returns the number of entries removed.
  std::size_t gc(std::uint32_t min_live);

  /// All installed versions of `key`, or nullptr when none (exact
  /// tables only) — how a validator or recovery pass inspects windows.
  const std::vector<ExactEntry>* exact_versions(
      const std::vector<std::uint64_t>& key) const;

  /// The live (open-window) version for `key`, or nullptr (exact
  /// tables only).
  const ExactEntry* find_exact(const std::vector<std::uint64_t>& key) const;
  /// The version visible to a packet stamped `epoch`, or nullptr.
  const ExactEntry* find_exact(const std::vector<std::uint64_t>& key,
                               std::uint32_t epoch) const;

  /// Look up the key values in key-component order, as seen by a
  /// packet stamped `epoch` (entries whose window excludes the epoch
  /// are invisible). Missing fields in the packet are the caller's
  /// concern (pass nullopt -> miss).
  LookupResult lookup(const std::vector<std::optional<std::uint64_t>>& key,
                      std::uint32_t epoch = 0) const;

  std::size_t entry_count() const { return size_; }
  void clear();

  /// Monotone mutation stamp: bumped by every entry mutation (install,
  /// remove, retire, unretire, gc, clear). The compiled fast path
  /// (sim::CompiledPipeline) snapshots it at compile time and treats
  /// any movement as "my lowered entries may be stale" — the
  /// trace-invalidation contract of DESIGN.md §12.
  std::uint64_t revision() const { return revision_; }

  /// Per-table hit/miss counters (direct counters in P4 terms),
  /// incremented by lookup().
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  /// Fold an externally-executed lookup into the hit/miss counters.
  /// The compiled fast path matches against its own lowered entry maps
  /// instead of calling lookup(), but the direct counters must stay
  /// truthful — the §7 health monitor reads them as liveness gates.
  void record_lookup(bool hit) const { (hit ? hits_ : misses_) += 1; }

  /// State export (§7 service upgrade / failure handling): enumerate
  /// installed entries — every version, retired and shadowed included.
  std::vector<ExactEntry> exact_entries() const;
  /// Ternary/LPM entries (empty for exact tables).
  const std::vector<net::Tcam<ActionCall>::Entry>& ternary_entries() const;

 private:
  const p4ir::Table* def_;
  std::size_t size_ = 0;
  std::uint64_t revision_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  // Exact storage: concatenated key string -> installed versions of
  // that key (pairwise non-overlapping windows; at most one open).
  std::unordered_map<std::string, std::vector<ExactEntry>> exact_;
  // Ternary/LPM storage; windows ride in a side map so the TCAM model
  // stays epoch-agnostic (absent handle = default window).
  std::optional<net::Tcam<ActionCall>> tcam_;
  std::map<std::size_t, EpochWindow> ternary_windows_;
};

}  // namespace dejavu::sim
