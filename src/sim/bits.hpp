// Bit-granular reads/writes over packet bytes: P4 fields are arbitrary
// bit slices (9-bit ports, 4-bit IHL, 1-bit flags), so the executor
// addresses them as (bit offset, width) within the packet.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace dejavu::sim {

/// Read `width` bits (<= 64) starting `bit_offset` bits into `data`,
/// MSB-first (network bit order). Throws std::out_of_range when the
/// slice exceeds the buffer.
std::uint64_t read_bits(std::span<const std::byte> data,
                        std::size_t bit_offset, std::size_t width);

/// Write the low `width` bits of `value` at the slice, MSB-first.
void write_bits(std::span<std::byte> data, std::size_t bit_offset,
                std::size_t width, std::uint64_t value);

/// Mask a value to `width` bits.
constexpr std::uint64_t mask_to_width(std::uint64_t v, std::size_t width) {
  return width >= 64 ? v : (v & ((std::uint64_t{1} << width) - 1));
}

}  // namespace dejavu::sim
