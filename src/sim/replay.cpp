#include "sim/replay.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <thread>

#include "verify/verify.hpp"

namespace dejavu::sim {

std::vector<ReplayFlow> make_path_flows(const FlowMix& mix,
                                        std::uint16_t path_id,
                                        std::uint16_t in_port) {
  std::vector<ReplayFlow> out;
  for (Flow& flow : generate_flows(mix)) {
    out.push_back(ReplayFlow{std::move(flow), in_port, path_id});
  }
  return out;
}

DataPlaneTarget::DataPlaneTarget(const p4ir::Program& program,
                                 const p4ir::TupleIdTable& ids,
                                 asic::SwitchConfig config,
                                 const std::function<void(DataPlane&)>& setup)
    : dp_(program, ids, std::move(config)) {
  // Front-of-setup verification: replaying against a program with VLIW
  // hazards or parser ambiguity produces silently wrong counters, so
  // reject such targets with named diagnostics instead.
  verify::VerifyInput vin;
  vin.program = &program;
  vin.ids = &ids;
  vin.config = &dp_.config();
  const verify::Report report = verify::run_all(vin);
  if (!report.ok()) {
    throw std::runtime_error("chain verifier rejected the replay target:\n" +
                             report.to_string());
  }
  if (setup) setup(dp_);
}

SwitchOutput DataPlaneTarget::inject(net::Packet packet,
                                     std::uint16_t in_port) {
  if (engine_ == EngineKind::kCompiled && compiled_) {
    return compiled_->process(std::move(packet), in_port);
  }
  return dp_.process(std::move(packet), in_port);
}

void DataPlaneTarget::set_engine(EngineKind kind) {
  engine_ = kind;
  if (kind == EngineKind::kCompiled && !compiled_) {
    compiled_ = std::make_unique<CompiledPipeline>(dp_, seed_);
  }
}

void DataPlaneTarget::set_compile_seed(CompileSeed seed) {
  seed_ = std::move(seed);
  if (compiled_) compiled_ = std::make_unique<CompiledPipeline>(dp_, seed_);
}

std::uint64_t DataPlaneTarget::compiled_packets() const {
  return compiled_ ? compiled_->stats().compiled_packets : 0;
}

std::uint64_t DataPlaneTarget::fallback_packets() const {
  return compiled_ ? compiled_->stats().fallback_packets : 0;
}

namespace {

/// Merge `from` into `into`. Every operand is itself deterministic, so
/// order of merging never shows in the result (sums and keyed unions
/// commute; the canonical loop sequence is keyed by max flow hash).
void merge_counters(ReplayCounters& into, const ReplayCounters& from) {
  into.packets += from.packets;
  into.delivered += from.delivered;
  into.emitted += from.emitted;
  into.dropped += from.dropped;
  into.punted += from.punted;
  into.recirculations += from.recirculations;
  into.resubmissions += from.resubmissions;
  for (const auto& [reason, n] : from.drop_reasons) {
    into.drop_reasons[reason] += n;
  }
  for (const auto& [epoch, n] : from.packets_by_epoch) {
    into.packets_by_epoch[epoch] += n;
  }
  for (const auto& [port, pc] : from.ports) into.ports[port] += pc;
  for (const auto& [path, pc] : from.per_path) {
    PathCounters& p = into.per_path[path];
    p.offered += pc.offered;
    p.delivered += pc.delivered;
    p.dropped += pc.dropped;
    p.punted += pc.punted;
    p.recirculations += pc.recirculations;
    p.resubmissions += pc.resubmissions;
    if (pc.canon_flow_hash > p.canon_flow_hash ||
        (pc.canon_flow_hash == p.canon_flow_hash &&
         pc.loop_pipelines < p.loop_pipelines)) {
      p.canon_flow_hash = pc.canon_flow_hash;
      p.loop_pipelines = pc.loop_pipelines;
    }
  }
}

/// One worker's whole job: replay its shard of flows against its
/// private target. Runs on the worker's thread; touches nothing
/// shared.
/// `[from_pkt, to_pkt)` bounds each flow's packet indices — a
/// concurrent-update replay runs [0, at) on the old generation,
/// applies the update, then runs [at, per_flow). Port counters are
/// only collected on the final segment (they accumulate in the
/// dataplane across segments).
ReplayCounters replay_shard(ReplayTarget& target,
                            const std::vector<ReplayFlow>& flows,
                            const std::vector<std::uint32_t>& shard,
                            const ReplayConfig& config,
                            std::uint32_t from_pkt, std::uint32_t to_pkt,
                            bool collect_ports) {
  ReplayCounters c;
  const std::uint32_t batch = std::max(1u, config.batch);

  for (std::uint32_t done = from_pkt; done < to_pkt; done += batch) {
    const std::uint32_t burst = std::min(batch, to_pkt - done);
    for (const std::uint32_t index : shard) {
      const ReplayFlow& rf = flows[index];
      const std::uint32_t hash = rf.flow.tuple().session_hash();
      for (std::uint32_t k = 0; k < burst; ++k) {
        SwitchOutput out = target.inject(rf.flow.packet(), rf.in_port);

        ++c.packets;
        ++c.packets_by_epoch[out.epoch];
        PathCounters& p = c.per_path[rf.path_id];
        ++p.offered;
        if (!out.out.empty()) {
          ++c.delivered;
          ++p.delivered;
        }
        c.emitted += out.out.size();
        if (out.dropped) {
          ++c.dropped;
          ++p.dropped;
          ++c.drop_reasons[out.drop_reason];
        }
        if (!out.to_cpu.empty()) {
          ++c.punted;
          ++p.punted;
        }
        c.recirculations += out.recirculations;
        p.recirculations += out.recirculations;
        c.resubmissions += out.resubmissions;
        p.resubmissions += out.resubmissions;

        if (!out.out.empty() && hash >= p.canon_flow_hash) {
          p.canon_flow_hash = hash;
          p.loop_pipelines.clear();
          for (const std::uint16_t port : out.recirc_ports) {
            p.loop_pipelines.push_back(target.dataplane().pipeline_of(port));
          }
        }
      }
    }
  }

  if (collect_ports) {
    for (const auto& [port, pc] : target.dataplane().all_port_counters()) {
      c.ports[port] += pc;
    }
  }
  return c;
}

}  // namespace

ReplayReport ReplayEngine::run(const std::vector<ReplayFlow>& flows,
                               const ReplayConfig& config) {
  const std::uint32_t workers = std::max(1u, config.workers);

  // Setup phase (untimed): build missing targets, reset counters,
  // shard the flows by FiveTuple hash so a flow's packets always meet
  // the same private switch replica.
  if (targets_.size() < workers) targets_.resize(workers);
  std::vector<std::uint64_t> pre_compiled(workers), pre_fallback(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    if (!targets_[w]) targets_[w] = factory_(w);
    targets_[w]->set_engine(config.engine);
    targets_[w]->dataplane().reset_counters();
    // Per-run engine tallies are deltas against these warm-target
    // baselines (the engine keeps targets across run() calls).
    pre_compiled[w] = targets_[w]->compiled_packets();
    pre_fallback[w] = targets_[w]->fallback_packets();
  }

  std::vector<std::vector<std::uint32_t>> shards(workers);
  for (std::uint32_t i = 0; i < flows.size(); ++i) {
    shards[flows[i].flow.tuple().session_hash() % workers].push_back(i);
  }
  if (config.shuffle_seed) {
    for (std::uint32_t w = 0; w < workers; ++w) {
      std::mt19937_64 rng(*config.shuffle_seed ^
                          (0x9e3779b97f4a7c15ULL * (w + 1)));
      std::shuffle(shards[w].begin(), shards[w].end(), rng);
    }
  }

  // Replay phase (timed).
  ReplayReport report;
  report.workers.resize(workers);
  std::vector<ReplayCounters> partial(workers);
  const auto wall_start = std::chrono::steady_clock::now();

  const std::uint32_t per_flow = std::max(1u, config.packets_per_flow);
  const std::uint32_t flip_at =
      config.update ? std::min(config.update->at_packet, per_flow) : per_flow;

  auto work = [&](std::uint32_t w) {
    const auto start = std::chrono::steady_clock::now();
    WorkerStats& stats = report.workers[w];
    if (config.update) {
      // Old generation up to the flip point, per flow...
      partial[w] = replay_shard(*targets_[w], flows, shards[w], config, 0,
                                flip_at, /*collect_ports=*/false);
      // ...the reconfiguration itself (timed: this is the window a
      // hitless update must survive)...
      const auto flip_start = std::chrono::steady_clock::now();
      if (config.update->apply) config.update->apply(*targets_[w], w);
      stats.update_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        flip_start)
              .count();
      // ...and the rest of every flow on whatever the update left live.
      merge_counters(partial[w],
                     replay_shard(*targets_[w], flows, shards[w], config,
                                  flip_at, per_flow, /*collect_ports=*/true));
    } else {
      partial[w] = replay_shard(*targets_[w], flows, shards[w], config, 0,
                                per_flow, /*collect_ports=*/true);
    }
    const auto end = std::chrono::steady_clock::now();
    stats.worker = w;
    stats.flows = shards[w].size();
    stats.packets = partial[w].packets;
    stats.busy_seconds = std::chrono::duration<double>(end - start).count();
  };

  if (workers == 1) {
    work(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::uint32_t w = 0; w < workers; ++w) threads.emplace_back(work, w);
    for (std::thread& t : threads) t.join();
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  for (const ReplayCounters& c : partial) merge_counters(report.counters, c);
  report.engine = config.engine;
  for (std::uint32_t w = 0; w < workers; ++w) {
    report.compiled_packets += targets_[w]->compiled_packets() -
                               pre_compiled[w];
    report.fallback_packets += targets_[w]->fallback_packets() -
                               pre_fallback[w];
  }
  return report;
}

ReplayReport run_replay(const TargetFactory& factory,
                        const std::vector<ReplayFlow>& flows,
                        const ReplayConfig& config) {
  ReplayEngine engine(factory);
  return engine.run(flows, config);
}

std::string ReplayReport::to_table() const {
  std::string s;
  char buf[192];
  const ReplayCounters& c = counters;
  std::snprintf(buf, sizeof(buf),
                "replayed %llu packets: %llu delivered, %llu dropped, "
                "%llu punted, %llu recirculations, %llu resubmissions\n",
                static_cast<unsigned long long>(c.packets),
                static_cast<unsigned long long>(c.delivered),
                static_cast<unsigned long long>(c.dropped),
                static_cast<unsigned long long>(c.punted),
                static_cast<unsigned long long>(c.recirculations),
                static_cast<unsigned long long>(c.resubmissions));
  s += buf;
  for (const auto& [reason, n] : c.drop_reasons) {
    std::snprintf(buf, sizeof(buf), "  drop '%s': %llu\n", reason.c_str(),
                  static_cast<unsigned long long>(n));
    s += buf;
  }
  if (c.packets_by_epoch.size() > 1 ||
      (c.packets_by_epoch.size() == 1 &&
       c.packets_by_epoch.begin()->first != 0)) {
    for (const auto& [epoch, n] : c.packets_by_epoch) {
      std::snprintf(buf, sizeof(buf), "  epoch %u: %llu packets\n", epoch,
                    static_cast<unsigned long long>(n));
      s += buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%-6s %-9s %-10s %-8s %-8s %-12s %-9s\n",
                "path", "offered", "delivered", "dropped", "punted",
                "recircs/pkt", "fraction");
  s += buf;
  for (const auto& [path, p] : c.per_path) {
    std::snprintf(buf, sizeof(buf),
                  "%-6u %-9llu %-10llu %-8llu %-8llu %-12.2f %-9.3f\n", path,
                  static_cast<unsigned long long>(p.offered),
                  static_cast<unsigned long long>(p.delivered),
                  static_cast<unsigned long long>(p.dropped),
                  static_cast<unsigned long long>(p.punted),
                  p.offered > 0
                      ? static_cast<double>(p.recirculations) / p.offered
                      : 0.0,
                  p.delivery_fraction());
    s += buf;
  }
  std::snprintf(buf, sizeof(buf), "%zu workers, %.3f s wall, %.0f pps\n",
                workers.size(), wall_seconds, packets_per_second());
  s += buf;
  if (engine == EngineKind::kCompiled) {
    std::snprintf(buf, sizeof(buf),
                  "engine compiled: %llu fast-path, %llu fallback\n",
                  static_cast<unsigned long long>(compiled_packets),
                  static_cast<unsigned long long>(fallback_packets));
    s += buf;
  }
  for (const WorkerStats& w : workers) {
    std::snprintf(buf, sizeof(buf),
                  "  worker %u: %llu flows, %llu packets, %.3f s busy, "
                  "%.0f pps\n",
                  w.worker, static_cast<unsigned long long>(w.flows),
                  static_cast<unsigned long long>(w.packets), w.busy_seconds,
                  w.pps());
    s += buf;
  }
  return s;
}

ThroughputReport replay_throughput(const ReplayReport& report,
                                   const asic::SwitchConfig& config,
                                   double total_offered_gbps) {
  const ReplayCounters& c = report.counters;
  std::vector<PathDemand> demands;
  for (const auto& [path, p] : c.per_path) {
    PathDemand d;
    d.path_id = path;
    d.offered_gbps = c.packets > 0 ? total_offered_gbps *
                                         static_cast<double>(p.offered) /
                                         static_cast<double>(c.packets)
                                   : 0;
    d.loop_pipelines = p.loop_pipelines;
    demands.push_back(std::move(d));
  }
  ThroughputReport out = solve_fluid_throughput(demands, config);
  out.total_offered_gbps = total_offered_gbps;
  out.total_delivered_gbps = 0;
  for (ChainThroughput& ct : out.per_path) {
    // Behavioral losses (ACL denies, unservable punts) come off the
    // top of whatever the recirculation fabric could carry.
    ct.delivered_gbps *= c.per_path.at(ct.path_id).delivery_fraction();
    out.total_delivered_gbps += ct.delivered_gbps;
  }
  return out;
}

}  // namespace dejavu::sim
