#include "sim/bits.hpp"

#include <stdexcept>

namespace dejavu::sim {

namespace {

void check(std::span<const std::byte> data, std::size_t bit_offset,
           std::size_t width) {
  if (width > 64) throw std::out_of_range("bit width > 64");
  if (bit_offset + width > data.size() * 8) {
    throw std::out_of_range("bit slice beyond buffer end");
  }
}

}  // namespace

std::uint64_t read_bits(std::span<const std::byte> data,
                        std::size_t bit_offset, std::size_t width) {
  check(data, bit_offset, width);
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bit = bit_offset + i;
    const std::size_t byte = bit / 8;
    const std::size_t shift = 7 - (bit % 8);
    v = (v << 1) | ((std::to_integer<std::uint64_t>(data[byte]) >> shift) & 1);
  }
  return v;
}

void write_bits(std::span<std::byte> data, std::size_t bit_offset,
                std::size_t width, std::uint64_t value) {
  check(data, bit_offset, width);
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t bit = bit_offset + i;
    const std::size_t byte = bit / 8;
    const std::size_t shift = 7 - (bit % 8);
    const std::uint64_t bit_value = (value >> (width - 1 - i)) & 1;
    auto b = std::to_integer<std::uint8_t>(data[byte]);
    b = static_cast<std::uint8_t>((b & ~(1u << shift)) |
                                  (bit_value << shift));
    data[byte] = static_cast<std::byte>(b);
  }
}

}  // namespace dejavu::sim
