// Deterministic fault injection for the behavioral data plane.
//
// Two fault lanes share one seed-driven schedule (FaultPlan):
//
//  - the *write lane* (FaultInjector) fails control-plane table writes
//    — transiently or until retries exhaust — and is consumed by
//    control::Transaction's retry/rollback machinery;
//  - the *packet lane* (ChaosTarget) perturbs the switch around
//    individual packet injections — entry evictions, recirculation
//    ports going down, register corruption — and checks the standing
//    chaos invariants on every output.
//
// Determinism contract (mirrors replay.hpp): every packet-lane fault
// is keyed on (flow-hash bucket, per-flow packet index), never on
// global arrival order, and every perturbation is applied and undone
// around a single injection of the owning flow. A flow therefore
// experiences the identical fault sequence on 1, 2, or 8 workers, so
// a seeded chaos run's merged counters and violation totals are
// bit-identical across worker counts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/replay.hpp"

namespace dejavu::sim {

enum class FaultKind : std::uint8_t {
  kWriteFail,        ///< table write returns a transient error
  kWriteTimeout,     ///< table write times out (also transient)
  kEvictEntry,       ///< the flow's own entries vanish from a table
  kRecircPortDown,   ///< a pipeline's recirc ports down for one packet
  kRegisterCorrupt,  ///< the flow's own register cell is flipped
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault. Write-lane events use {op_index, count};
/// packet-lane events use {flow_bucket, packet_index} plus the
/// kind-specific target (table / control+reg / pipeline).
struct FaultEvent {
  FaultKind kind = FaultKind::kWriteFail;

  // --- write lane ---
  /// Logical write op (0-based, within one transaction) to fail.
  std::uint32_t op_index = 0;
  /// Consecutive attempts that fail (count >= retry budget makes the
  /// fault effectively permanent).
  std::uint32_t count = 1;

  // --- packet lane ---
  /// session_hash % FaultPlan::kFlowBuckets of the victim flow.
  std::uint32_t flow_bucket = 0;
  /// The victim flow's per-flow injection index the fault fires at.
  std::uint32_t packet_index = 0;
  std::string table;    ///< kEvictEntry: table whose entries vanish
  std::string control;  ///< kRegisterCorrupt: control block name
  std::string reg;      ///< kRegisterCorrupt: register array name
  std::uint32_t pipeline = 0;  ///< kRecircPortDown: victim pipeline

  std::string to_string() const;
  bool operator==(const FaultEvent&) const = default;
};

/// Knobs for seed-driven schedule synthesis: how many events of each
/// kind, and the candidate targets to draw from.
struct FaultProfile {
  std::uint32_t write_fails = 2;
  std::uint32_t write_timeouts = 1;
  std::uint32_t evictions = 4;
  std::uint32_t recirc_downs = 2;
  std::uint32_t register_corruptions = 2;

  /// Write-lane ops are drawn from [0, max_op_index).
  std::uint32_t max_op_index = 8;
  /// Transient failure runs are drawn from [1, max_fail_count].
  std::uint32_t max_fail_count = 2;
  /// Packet-lane indices are drawn from [min_packet_index,
  /// max_packet_index). min >= 1 so the victim flow has already been
  /// through the switch once (and e.g. owns an LB session entry).
  std::uint32_t min_packet_index = 1;
  std::uint32_t max_packet_index = 12;

  std::vector<std::string> evict_tables;  ///< kEvictEntry candidates
  /// kRegisterCorrupt candidates as (control block, register) pairs.
  std::vector<std::pair<std::string, std::string>> corrupt_registers;
  std::vector<std::uint32_t> pipelines;  ///< kRecircPortDown candidates

  /// The Fig. 2 deployment's candidates: evict lb_session entries,
  /// knock pipeline 1 (the loopback pipeline) recirc ports down.
  static FaultProfile fig2_mixed();
};

/// A replayable fault schedule. Same seed + same profile -> same
/// events, always.
struct FaultPlan {
  /// Flow-identity buckets for packet-lane targeting. Coarse enough
  /// that most buckets are hit in a ~100-flow run, fine enough to
  /// leave healthy flows as controls.
  static constexpr std::uint32_t kFlowBuckets = 64;

  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  static FaultPlan from_seed(std::uint64_t seed, const FaultProfile& profile);

  /// Packet-lane events scheduled for this (bucket, index) injection.
  std::vector<const FaultEvent*> packet_events(std::uint32_t flow_bucket,
                                               std::uint32_t packet_index) const;
  /// All write-lane events (kWriteFail / kWriteTimeout).
  std::vector<const FaultEvent*> write_events() const;

  std::string to_string() const;
};

/// Thrown by FaultInjector for kWriteFail / kWriteTimeout events; the
/// transaction layer treats it as retryable.
class TransientWriteError : public std::runtime_error {
 public:
  explicit TransientWriteError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Write-lane consumer: control::Transaction calls on_write(op) before
/// every physical write attempt. Each scheduled event fails `count`
/// consecutive attempts at its op index, then lets the op through —
/// so count < retry budget exercises retry, count >= budget forces
/// rollback.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan);

  /// Throws TransientWriteError when the plan schedules a fault (with
  /// remaining budget) at logical op `op_index`.
  void on_write(std::uint32_t op_index);

  std::uint32_t faults_fired() const { return fired_; }
  /// Re-arm the schedule (each Transaction commit counts ops from 0).
  void reset();

 private:
  std::vector<FaultEvent> write_events_;
  // op_index -> (kind, remaining failures)
  std::map<std::uint32_t, std::pair<FaultKind, std::uint32_t>> budget_;
  std::uint32_t fired_ = 0;
};

/// The standing invariants every chaos run asserts, counted per shim
/// and summed by the driver. All zeros == healthy.
struct InvariantViolations {
  /// Dropped packets whose DropCode is kNone: a drop with no reason.
  std::uint64_t unattributed_drops = 0;
  /// Emitted packets whose IPv4 header checksum is stale/invalid.
  std::uint64_t corrupt_packets = 0;
  /// Emitted packets still carrying the SFC header (metadata leak).
  std::uint64_t metadata_leaks = 0;
  /// Packets dropped as kMaxPassesExceeded (forwarding loop).
  std::uint64_t forwarding_loops = 0;

  std::uint64_t total() const {
    return unattributed_drops + corrupt_packets + metadata_leaks +
           forwarding_loops;
  }
  InvariantViolations& operator+=(const InvariantViolations& o) {
    unattributed_drops += o.unattributed_drops;
    corrupt_packets += o.corrupt_packets;
    metadata_leaks += o.metadata_leaks;
    forwarding_loops += o.forwarding_loops;
    return *this;
  }
  bool operator==(const InvariantViolations&) const = default;
  std::string to_string() const;
};

/// Packet-lane shim: wraps a worker's private ReplayTarget, applies
/// the plan's packet-lane faults around each injection, and checks the
/// chaos invariants on every SwitchOutput. One shim per worker; the
/// shim only ever touches its own worker's private replica, so no
/// locking is needed and determinism is preserved.
class ChaosTarget : public ReplayTarget {
 public:
  ChaosTarget(std::unique_ptr<ReplayTarget> inner, FaultPlan plan);

  SwitchOutput inject(net::Packet packet, std::uint16_t in_port) override;
  DataPlane& dataplane() override { return inner_->dataplane(); }

  const InvariantViolations& violations() const { return violations_; }
  /// Faults actually applied, keyed by fault_kind_name (an eviction
  /// scheduled for a flow that owns no entries applies zero times).
  const std::map<std::string, std::uint64_t>& faults_applied() const {
    return faults_applied_;
  }

  /// Check one SwitchOutput against the invariants (also used by the
  /// repair drill, which drives the switch without a shim).
  static InvariantViolations check_output(const SwitchOutput& out);

 private:
  void apply_evict(const FaultEvent& ev, const net::FiveTuple& tuple);
  void learn_new_entries(const std::string& table,
                         const net::FiveTuple& tuple);

  std::unique_ptr<ReplayTarget> inner_;
  FaultPlan plan_;
  InvariantViolations violations_;
  std::map<std::string, std::uint64_t> faults_applied_;
  // Per-flow injection counters (keyed by full 5-tuple: two flows in
  // one hash bucket must still count independently).
  std::map<net::FiveTuple, std::uint32_t> flow_index_;
  // Tables with scheduled evictions: table -> key set seen before the
  // current injection, and table -> (flow -> keys that flow created).
  std::map<std::string, std::set<std::vector<std::uint64_t>>> known_keys_;
  std::map<std::string, std::map<net::FiveTuple,
                                 std::set<std::vector<std::uint64_t>>>>
      owned_keys_;
  std::set<std::string> evict_watch_;
};

/// Wrap `inner` so every worker gets a fault-injecting shim. When
/// `shims` is non-null it collects the shim of each worker (pointers
/// stay valid while the engine holding the targets is alive) so the
/// driver can sum violations and fault counts after the run.
TargetFactory chaos_factory(TargetFactory inner, FaultPlan plan,
                            std::vector<ChaosTarget*>* shims = nullptr);

}  // namespace dejavu::sim
