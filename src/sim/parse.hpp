// Parser execution: walk a parser DAG over packet bytes, producing the
// set of recognized headers and their byte offsets. This is what the
// ingress/egress parser blocks of Fig. 1 do per pass.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "p4ir/program.hpp"

namespace dejavu::sim {

/// The parse result of one pass: which headers were recognized and
/// where they start. A header type appears at most once per packet in
/// our layouts (the (type, offset) vertex distinction exists for
/// cross-program merging, not for duplicate extraction).
class ParseResult {
 public:
  void add(const std::string& header_type, std::uint32_t byte_offset);
  bool has(const std::string& header_type) const;
  std::optional<std::uint32_t> offset_of(const std::string& header_type) const;
  const std::vector<std::string>& order() const { return order_; }

 private:
  std::map<std::string, std::uint32_t> offsets_;
  std::vector<std::string> order_;
};

/// Execute `program`'s parser over the packet bytes. At each vertex
/// the outgoing selectors are evaluated against already-parsed fields;
/// no matching edge (and no default) means accept. Vertices whose
/// header extends past the packet end stop the walk (truncated frame).
ParseResult run_parser(const p4ir::Program& program,
                       const p4ir::TupleIdTable& ids,
                       const net::Packet& packet);

}  // namespace dejavu::sim
