// The compiled fast path (DESIGN.md §12): lower a deployed chain —
// merged parser graph, per-pipelet match-action tables with their
// installed rules, resubmit/recirc disposition — into flat dispatch
// arrays executed over a reusable, zero-heap-allocation per-packet
// scratch state. This is the reproduction's stand-in for the ASIC's
// compiled pipeline: the generic interpreter (sim::DataPlane::process)
// re-parses dotted field names, rebuilds parse results, and copies
// ActionCall maps on every packet; the compiled form resolves all of
// that once, at compile time, against the *currently installed* rules
// and the *current* chain generation.
//
// Semantics contract: for every packet the compiled engine accepts, the
// outcome is bit-identical to the interpreter — same SwitchOutput
// (minus the debug trace / pipelets_visited), same port counters, same
// register side effects, same punt-ledger movement, same per-table
// hit/miss counters, same DropCode attribution, same pass cap. Packets
// it does not accept *escape* to the interpreter before any side
// effect and count as fallback_packets:
//   - CPU reinjections and epoch-stamped packets (from_cpu / stamp):
//     the slow path stays on the interpreter by design;
//   - packets whose parse shape (ordered set of extracted headers) is
//     outside the compiled trace set seeded from the explorer's path
//     equivalence classes (malformed/truncated/unknown headers);
//   - everything, when compilation failed (uncompilable construct,
//     witness disagreement) — the engine degrades to a pure
//     interpreter shim rather than guess.
//
// Invalidation contract: compilation snapshots every lowered
// RuntimeTable's revision() and the dataplane's epoch. Before each
// packet the snapshot is revalidated; any movement — a Transaction
// commit, a LiveUpdate flip, a ChainRepair swap, LB session learning —
// triggers a synchronous recompile (or, if that fails, fallback). A
// retired generation is therefore never served from stale traces.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/dataplane.hpp"

namespace dejavu::sim {

/// Explorer-derived compile seed: witness packets, one per path
/// equivalence class (explore::compile_seed converts an ExploreResult).
/// The witnesses (a) define the compiled trace set — a packet whose
/// parse shape no witness exhibits escapes to the interpreter — and
/// (b) gate compilation: each witness is replayed through interpreter
/// and compiled engine on cloned dataplanes, and any disagreement
/// rejects the compile. An empty seed compiles every shape the parser
/// graph can produce and skips witness validation.
struct CompileSeed {
  struct Witness {
    net::Packet packet;
    std::uint16_t in_port = 0;
  };
  std::vector<Witness> witnesses;
};

/// Engine observability (perf half — never part of replay counters).
struct CompiledStats {
  std::uint64_t compiled_packets = 0;  ///< ran fully on the fast path
  std::uint64_t fallback_packets = 0;  ///< delegated to the interpreter
  std::uint64_t recompiles = 0;        ///< successful (re)compilations
  std::uint64_t failed_compiles = 0;
  std::uint64_t shape_escapes = 0;        ///< parse shape not compiled
  std::uint64_t reinjection_escapes = 0;  ///< from_cpu / stamped packets
};

/// SwitchOutput equality over everything the engines must agree on:
/// emissions, punts, drop code + reason string, epoch, resubmission /
/// recirculation counts and ports. The debug trace and
/// pipelets_visited are interpreter-only diagnostics and excluded.
bool semantically_equal(const SwitchOutput& a, const SwitchOutput& b);

/// One compiled engine bound to one DataPlane. Not thread-safe: the
/// scratch state is reused across packets (the zero-allocation hot
/// path), so use one instance per replay worker, like the DataPlane
/// replicas themselves.
class CompiledPipeline {
 public:
  /// Compiles immediately against dp's current program + rules.
  /// `dp` must outlive the pipeline and keep a stable address.
  explicit CompiledPipeline(DataPlane& dp, CompileSeed seed = {});

  /// Drop-in replacement for DataPlane::process (same signature, same
  /// observable behavior); escapes delegate to it.
  SwitchOutput process(net::Packet packet, std::uint16_t in_port,
                       bool from_cpu = false,
                       std::optional<std::uint32_t> stamp = std::nullopt);

  /// Did the last (re)compile succeed? When false every packet falls
  /// back (still correct, no longer fast).
  bool compiled_ok() const { return compiled_ok_; }
  /// Why not, when it didn't.
  const std::string& compile_error() const { return compile_error_; }

  /// Count of successful compiles so far — the invalidation property
  /// tests assert that a committed update moved this (recompiled) or
  /// cleared compiled_ok() (fell back).
  std::uint64_t generation() const { return stats_.recompiles; }

  /// Force a recompile now (e.g. after a known rule burst); returns
  /// compiled_ok().
  bool recompile();

  const CompiledStats& stats() const { return stats_; }

  DataPlane& dataplane() { return *dp_; }

 private:
  // --- compiled program representation (flat arrays, arena-indexed) ---

  /// Where a resolved field lives. kNone reads nullopt / writes no-op —
  /// the lowered form of an unknown or unparseable dotted reference.
  enum class Space : std::uint8_t { kHeader, kMeta, kLocal, kNone };

  enum class MetaField : std::uint8_t {
    kIngressPort,
    kEgressSpec,
    kEgressPort,
    kPacketLength,
    kResubmitFlag,
    kRecirculateFlag,
    kDropFlag,
    kMirrorFlag,
    kToCpuFlag,
    kEpoch,    // readable, not writable (matches FieldView)
    kUnknown,  // named standard_metadata.* field that doesn't exist
  };

  struct FieldRefC {
    Space space = Space::kNone;
    MetaField meta = MetaField::kUnknown;
    std::uint16_t header = 0;  // header-type index
    std::uint32_t bit_off = 0;
    std::uint16_t bits = 0;
    std::uint16_t local_slot = 0;
    /// Writing this field can change what the parser extracts (its
    /// bits overlap a parser selector) — invalidate the cached parse.
    bool affects_parse = false;
  };

  struct OpC {
    p4ir::PrimitiveOp op = p4ir::PrimitiveOp::kNoop;
    FieldRefC dst;
    FieldRefC src;   // kCopy source / register index field
    FieldRefC vsrc;  // kRegisterWrite value source
    std::uint64_t imm = 0;  // immediate / baked action argument
    std::uint8_t ctx_key = 0;
    std::uint16_t ctx_value = 0;
    std::vector<std::uint64_t>* reg = nullptr;
    std::uint64_t reg_mask = 0;
    bool reg_index_from_imm = false;
    bool reg_value_from_imm = false;
    bool reg_write_dst = false;  // kRegisterAdd: dst non-empty
    std::uint32_t hash_begin = 0;  // kHash: slice of hash_srcs_
    std::uint32_t hash_count = 0;
  };

  struct HashSrc {
    FieldRefC ref;
    std::uint8_t bytes = 4;
  };

  /// A compiled action body: slice of ops_. count == 0 means "no
  /// action" (empty action name).
  struct ActionRef {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  static constexpr std::size_t kMaxKeyArity = 8;

  struct ExactKey {
    std::uint64_t v[kMaxKeyArity] = {};
    std::uint8_t n = 0;
    bool operator==(const ExactKey& o) const {
      if (n != o.n) return false;
      for (std::uint8_t i = 0; i < n; ++i) {
        if (v[i] != o.v[i]) return false;
      }
      return true;
    }
  };
  struct ExactKeyHash {
    std::size_t operator()(const ExactKey& k) const {
      std::uint64_t h = 1469598103934665603ull;
      for (std::uint8_t i = 0; i < k.n; ++i) {
        h ^= k.v[i];
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// One lowered ternary entry: value/mask pairs in vm_, TCAM priority
  /// order preserved, epoch-filtered at compile time.
  struct TernEntryC {
    std::uint32_t vm_begin = 0;
    std::uint32_t vm_count = 0;
    ActionRef action;
  };

  struct TableC {
    const RuntimeTable* rt = nullptr;  // for record_lookup + revision
    bool keyless = false;
    bool is_tcam = false;
    std::uint32_t key_begin = 0;  // slice of key_refs_
    std::uint32_t key_count = 0;
    std::unordered_map<ExactKey, ActionRef, ExactKeyHash> exact;
    std::vector<TernEntryC> tern;
    ActionRef default_action;
  };

  struct EntryC {
    std::uint32_t table = 0;
    std::int32_t branch = -1;  // -1 = unconditional
    bool has_field_guard = false;
    FieldRefC guard_field;
    std::uint64_t guard_value = 0;
    p4ir::GuardCmp guard_cmp = p4ir::GuardCmp::kEq;
    std::uint32_t guard_begin = 0;  // slice of guard_tables_
    std::uint32_t guard_count = 0;
    p4ir::GuardMode mode = p4ir::GuardMode::kAlways;
  };

  struct ControlC {
    bool present = false;
    std::vector<EntryC> entries;
    std::vector<TableC> tables;
    std::uint32_t branch_count = 0;
  };

  struct ParseEdgeC {
    bool is_default = false;
    FieldRefC select;
    std::uint64_t value = 0;
    std::uint32_t to = 0;  // compiled state index
  };

  struct ParseStateC {
    bool valid = false;  // header type resolved
    std::uint16_t header = 0;
    std::uint32_t offset = 0;
    std::uint32_t width = 0;
    std::uint32_t edge_begin = 0;
    std::uint32_t edge_count = 0;
  };

  /// A table-guard reference: index into the owning control's tables,
  /// or kAbsentTable for a name never applied (always a miss).
  static constexpr std::uint32_t kAbsentTable = 0xffffffff;

  // --- compilation ---
  bool compile(std::string* err);
  bool compile_control(const std::string& control_name, ControlC& cc,
                       std::string* err);
  bool compile_action(const p4ir::ControlBlock& control,
                      const ActionCall& call, ActionRef& out,
                      std::string* err);
  FieldRefC resolve_field(const std::string& dotted);
  FieldRefC resolve_header_field(const std::string& dotted) const;
  void mark_parse_selectors();
  void collect_shapes_from_witnesses();
  bool collect_all_shapes();
  bool shape_dfs(std::uint32_t state, std::uint64_t present,
                 std::uint64_t hash, std::size_t hop);
  bool validate_witnesses(std::string* err);
  bool ensure_valid();

  // --- execution (per-packet scratch; single-threaded) ---
  SwitchOutput run(net::Packet packet, std::uint16_t in_port);
  void run_control(const ControlC& cc, net::Packet& packet,
                   StandardMetadata& meta);
  void run_action(ActionRef ref, net::Packet& packet, StandardMetadata& meta);
  void do_emit(net::Packet packet, std::uint16_t port, SwitchOutput& out);
  void run_parse(const net::Packet& packet);
  void ensure_parse(const net::Packet& packet);
  std::optional<std::uint64_t> read_field(const FieldRefC& f,
                                          const net::Packet& packet,
                                          const StandardMetadata& meta);
  void write_field(const FieldRefC& f, std::uint64_t value,
                   net::Packet& packet, StandardMetadata& meta);
  SwitchOutput fall_back(net::Packet packet, std::uint16_t in_port,
                         bool from_cpu, std::optional<std::uint32_t> stamp);

  DataPlane* dp_;
  CompileSeed seed_;
  bool compiled_ok_ = false;
  bool validated_once_ = false;
  std::string compile_error_;
  CompiledStats stats_;

  // Snapshot the compiled form is valid for.
  std::uint32_t compiled_epoch_ = 0;
  std::uint32_t attempted_epoch_ = 0;
  bool attempted_ = false;
  std::vector<std::pair<const RuntimeTable*, std::uint64_t>> revisions_;

  // Compiled program.
  std::vector<ControlC> controls_;  // [pipeline * 2 + (kind == egress)]
  std::uint32_t pipelines_ = 0;
  std::vector<ParseStateC> parse_states_;
  std::vector<ParseEdgeC> parse_edges_;
  std::uint32_t parse_start_ = 0;
  bool parser_empty_ = true;
  std::vector<OpC> ops_;
  std::vector<HashSrc> hash_srcs_;
  std::vector<FieldRefC> key_refs_;
  std::vector<std::uint32_t> guard_tables_;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> vm_;  // value, mask
  std::unordered_set<std::uint64_t> shapes_;
  std::unordered_map<std::string, std::uint16_t> header_index_;
  std::unordered_map<std::string, std::uint16_t> local_index_;
  std::int32_t ipv4_header_ = -1;
  std::int32_t sfc_header_ = -1;
  bool sfc_affects_parse_ = false;
  /// Per-header bit ranges the parser's edge selectors read; a write
  /// overlapping one can steer the next parse.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint16_t>>>
      selector_ranges_;

  // Per-packet scratch (reused; no allocation once warmed).
  std::vector<std::uint32_t> hdr_off_;
  std::uint64_t present_ = 0;
  std::uint64_t shape_hash_ = 0;
  bool parse_dirty_ = true;
  std::vector<std::uint64_t> local_val_;
  std::vector<std::uint32_t> local_stamp_;
  std::vector<std::uint8_t> hit_val_;
  std::vector<std::uint32_t> hit_stamp_;
  std::vector<std::uint32_t> branch_checked_stamp_;
  std::uint32_t pass_token_ = 0;
};

}  // namespace dejavu::sim
