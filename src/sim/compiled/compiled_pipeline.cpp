#include "sim/compiled/compiled_pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "merge/compose.hpp"
#include "net/checksum.hpp"
#include "sfc/header.hpp"
#include "sim/bits.hpp"
#include "sim/parse.hpp"

namespace dejavu::sim {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
// Compile-gate witnesses replayed before the fast path goes live;
// beyond this the seed still defines shapes but validation is capped.
constexpr std::size_t kMaxValidatedWitnesses = 128;
// Safety valve on the no-seed shape universe (paths through the parser
// DAG); overflowing graphs are not worth compiling.
constexpr std::size_t kMaxShapes = 65536;

std::uint64_t shape_extend(std::uint64_t hash, std::uint16_t header) {
  return (hash ^ (std::uint64_t{header} + 1)) * kFnvPrime;
}

}  // namespace

bool semantically_equal(const SwitchOutput& a, const SwitchOutput& b) {
  if (a.dropped != b.dropped || a.drop_code != b.drop_code ||
      a.drop_reason != b.drop_reason || a.epoch != b.epoch ||
      a.resubmissions != b.resubmissions ||
      a.recirculations != b.recirculations ||
      a.recirc_ports != b.recirc_ports || a.out.size() != b.out.size() ||
      a.to_cpu.size() != b.to_cpu.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.out.size(); ++i) {
    if (a.out[i].port != b.out[i].port || a.out[i].packet != b.out[i].packet) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.to_cpu.size(); ++i) {
    if (a.to_cpu[i].in_port != b.to_cpu[i].in_port ||
        a.to_cpu[i].epoch != b.to_cpu[i].epoch ||
        a.to_cpu[i].packet != b.to_cpu[i].packet) {
      return false;
    }
  }
  return true;
}

CompiledPipeline::CompiledPipeline(DataPlane& dp, CompileSeed seed)
    : dp_(&dp), seed_(std::move(seed)) {
  recompile();
}

bool CompiledPipeline::recompile() {
  attempted_ = true;
  attempted_epoch_ = dp_->epoch();
  std::string err;
  compiled_ok_ = compile(&err);
  if (compiled_ok_) {
    ++stats_.recompiles;
    compile_error_.clear();
  } else {
    ++stats_.failed_compiles;
    compile_error_ = err;
  }
  return compiled_ok_;
}

bool CompiledPipeline::ensure_valid() {
  if (compiled_ok_) {
    if (compiled_epoch_ == dp_->epoch()) {
      bool stale = false;
      for (const auto& [rt, rev] : revisions_) {
        if (rt->revision() != rev) {
          stale = true;
          break;
        }
      }
      if (!stale) return true;
    }
    return recompile();
  }
  // A failed compile (uncompilable construct) rarely heals on rule
  // churn alone; retry only when the generation moves, and stay on the
  // always-correct interpreter otherwise.
  if (attempted_ && attempted_epoch_ == dp_->epoch()) return false;
  return recompile();
}

// --- compilation -----------------------------------------------------

CompiledPipeline::FieldRefC CompiledPipeline::resolve_header_field(
    const std::string& dotted) const {
  FieldRefC out;
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return out;
  auto hit = header_index_.find(ref->header);
  if (hit == header_index_.end()) return out;
  const p4ir::HeaderType* type = dp_->program().find_header_type(ref->header);
  if (type == nullptr) return out;
  auto bit_off = type->bit_offset(ref->field);
  const p4ir::Field* field = type->find_field(ref->field);
  if (!bit_off || field == nullptr) return out;
  out.space = Space::kHeader;
  out.header = hit->second;
  out.bit_off = *bit_off;
  out.bits = field->bits;
  return out;
}

CompiledPipeline::FieldRefC CompiledPipeline::resolve_field(
    const std::string& dotted) {
  FieldRefC out;
  auto ref = p4ir::FieldRef::parse(dotted);
  if (!ref) return out;
  if (ref->header == "standard_metadata") {
    out.space = Space::kMeta;
    const std::string& f = ref->field;
    out.meta = f == "ingress_port"       ? MetaField::kIngressPort
               : f == "egress_spec"      ? MetaField::kEgressSpec
               : f == "egress_port"      ? MetaField::kEgressPort
               : f == "packet_length"    ? MetaField::kPacketLength
               : f == "resubmit_flag"    ? MetaField::kResubmitFlag
               : f == "recirculate_flag" ? MetaField::kRecirculateFlag
               : f == "drop_flag"        ? MetaField::kDropFlag
               : f == "mirror_flag"      ? MetaField::kMirrorFlag
               : f == "to_cpu_flag"      ? MetaField::kToCpuFlag
               : f == "epoch"            ? MetaField::kEpoch
                                         : MetaField::kUnknown;
    return out;
  }
  if (ref->header == "local") {
    auto [it, inserted] = local_index_.try_emplace(
        ref->field, static_cast<std::uint16_t>(local_index_.size()));
    (void)inserted;
    out.space = Space::kLocal;
    out.local_slot = it->second;
    return out;
  }
  out = resolve_header_field(dotted);
  if (out.space == Space::kHeader && out.header < selector_ranges_.size()) {
    const std::uint32_t lo = out.bit_off;
    const std::uint32_t hi = out.bit_off + out.bits;
    for (const auto& [sel_off, sel_bits] : selector_ranges_[out.header]) {
      if (lo < sel_off + sel_bits && sel_off < hi) {
        out.affects_parse = true;
        break;
      }
    }
  }
  return out;
}

void CompiledPipeline::mark_parse_selectors() {
  selector_ranges_.assign(header_index_.size(), {});
  sfc_affects_parse_ = false;
  for (const ParseEdgeC& e : parse_edges_) {
    if (e.is_default || e.select.space != Space::kHeader) continue;
    selector_ranges_[e.select.header].push_back({e.select.bit_off,
                                                 e.select.bits});
    if (sfc_header_ >= 0 &&
        e.select.header == static_cast<std::uint16_t>(sfc_header_)) {
      sfc_affects_parse_ = true;
    }
  }
}

bool CompiledPipeline::compile_action(const p4ir::ControlBlock& control,
                                      const ActionCall& call, ActionRef& out,
                                      std::string* err) {
  out = ActionRef{};
  if (call.action.empty()) return true;
  const p4ir::Action* action = control.find_action(call.action);
  if (action == nullptr) {
    *err = "action '" + call.action + "' not defined in control '" +
           control.name() + "'";
    return false;
  }
  auto arg = [&](const std::string& param,
                 std::uint64_t* value) -> bool {
    auto it = call.args.find(param);
    if (it == call.args.end()) {
      *err = "action '" + call.action + "' installed without argument '" +
             param + "'";
      return false;
    }
    *value = it->second;
    return true;
  };

  out.begin = static_cast<std::uint32_t>(ops_.size());
  for (const p4ir::Primitive& p : action->primitives) {
    OpC op;
    op.op = p.op;
    switch (p.op) {
      case p4ir::PrimitiveOp::kNoop:
      case p4ir::PrimitiveOp::kDrop:
      case p4ir::PrimitiveOp::kPushSfc:
      case p4ir::PrimitiveOp::kPopSfc:
        break;
      case p4ir::PrimitiveOp::kSetImmediate:
        op.dst = resolve_field(p.dst);
        op.imm = p.imm;
        break;
      case p4ir::PrimitiveOp::kSetFromParam:
        op.dst = resolve_field(p.dst);
        if (!arg(p.param, &op.imm)) return false;
        break;
      case p4ir::PrimitiveOp::kCopy:
        op.dst = resolve_field(p.dst);
        op.src = resolve_field(p.src);
        break;
      case p4ir::PrimitiveOp::kAdd:
        op.dst = resolve_field(p.dst);
        op.imm = p.imm;
        break;
      case p4ir::PrimitiveOp::kHash: {
        op.dst = resolve_field(p.dst);
        op.hash_begin = static_cast<std::uint32_t>(hash_srcs_.size());
        for (const std::string& src : p.srcs) {
          HashSrc hs;
          hs.ref = resolve_field(src);
          const auto bits = dp_->program().field_bits(src).value_or(32);
          hs.bytes = static_cast<std::uint8_t>((bits + 7) / 8);
          hash_srcs_.push_back(hs);
        }
        op.hash_count = static_cast<std::uint32_t>(p.srcs.size());
        break;
      }
      case p4ir::PrimitiveOp::kSetContext: {
        op.ctx_key = static_cast<std::uint8_t>(p.imm);
        std::uint64_t v = 0;
        if (!arg(p.param, &v)) return false;
        op.ctx_value = static_cast<std::uint16_t>(v);
        break;
      }
      case p4ir::PrimitiveOp::kRegisterRead:
      case p4ir::PrimitiveOp::kRegisterAdd:
      case p4ir::PrimitiveOp::kRegisterWrite: {
        const p4ir::RegisterDef* def = control.find_register(p.param);
        std::vector<std::uint64_t>* cells =
            dp_->register_array(control.name(), p.param);
        if (def == nullptr || cells == nullptr) {
          *err = "action '" + call.action + "' uses unknown register '" +
                 p.param + "'";
          return false;
        }
        op.reg = cells;
        op.reg_mask = def->width_bits >= 64
                          ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << def->width_bits) - 1;
        op.imm = p.imm;
        op.reg_index_from_imm = p.src.empty();
        if (!p.src.empty()) op.src = resolve_field(p.src);
        if (p.op == p4ir::PrimitiveOp::kRegisterWrite) {
          op.reg_value_from_imm = p.srcs.empty();
          if (!p.srcs.empty()) op.vsrc = resolve_field(p.srcs[0]);
        }
        if (p.op == p4ir::PrimitiveOp::kRegisterAdd) {
          op.reg_write_dst = !p.dst.empty();
          if (op.reg_write_dst) op.dst = resolve_field(p.dst);
        }
        if (p.op == p4ir::PrimitiveOp::kRegisterRead) {
          op.dst = resolve_field(p.dst);
        }
        break;
      }
    }
    ops_.push_back(op);
  }
  out.count = static_cast<std::uint32_t>(ops_.size()) - out.begin;
  return true;
}

bool CompiledPipeline::compile_control(const std::string& control_name,
                                       ControlC& cc, std::string* err) {
  const p4ir::ControlBlock* cb = dp_->program().find_control(control_name);
  if (cb == nullptr) {
    cc.present = false;
    return true;
  }
  cc.present = true;

  // Dense control-local indices for applied tables and branches.
  std::unordered_map<std::string, std::uint32_t> tidx;
  std::unordered_map<std::string, std::int32_t> bidx;
  for (const p4ir::ApplyEntry& ae : cb->apply_order()) {
    tidx.try_emplace(ae.table, static_cast<std::uint32_t>(tidx.size()));
    if (!ae.branch_id.empty()) {
      bidx.try_emplace(ae.branch_id, static_cast<std::int32_t>(bidx.size()));
    }
  }
  cc.branch_count = static_cast<std::uint32_t>(bidx.size());
  cc.tables.resize(tidx.size());

  for (const p4ir::ApplyEntry& ae : cb->apply_order()) {
    EntryC e;
    e.table = tidx.at(ae.table);
    e.branch = ae.branch_id.empty() ? -1 : bidx.at(ae.branch_id);
    if (ae.field_guard) {
      e.has_field_guard = true;
      e.guard_field = resolve_field(ae.field_guard->field);
      e.guard_value = ae.field_guard->value;
      e.guard_cmp = ae.field_guard->effective_cmp();
    }
    e.guard_begin = static_cast<std::uint32_t>(guard_tables_.size());
    for (const std::string& g : ae.guard_tables) {
      auto git = tidx.find(g);
      guard_tables_.push_back(git == tidx.end() ? kAbsentTable : git->second);
    }
    e.guard_count = static_cast<std::uint32_t>(ae.guard_tables.size());
    e.mode = ae.mode;
    cc.entries.push_back(e);
  }

  for (const auto& [tname, idx] : tidx) {
    const p4ir::Table* def = cb->find_table(tname);
    const RuntimeTable* rt = dp_->table_in(control_name, tname);
    if (def == nullptr || rt == nullptr) {
      *err = "apply of unknown table '" + tname + "'";
      return false;
    }
    TableC& t = cc.tables[idx];
    t.rt = rt;
    t.keyless = def->keyless();
    t.is_tcam = def->needs_tcam();
    if (def->keys.size() > kMaxKeyArity) {
      *err = "table '" + tname + "' key arity exceeds compiled limit";
      return false;
    }
    t.key_begin = static_cast<std::uint32_t>(key_refs_.size());
    t.key_count = static_cast<std::uint32_t>(def->keys.size());
    for (const p4ir::TableKey& k : def->keys) {
      key_refs_.push_back(resolve_field(k.field));
    }
    if (!compile_action(*cb, ActionCall{def->default_action, {}},
                        t.default_action, err)) {
      return false;
    }
    if (t.is_tcam) {
      for (const auto& entry : rt->ternary_entries()) {
        if (!rt->ternary_window(entry.handle).contains(compiled_epoch_)) {
          continue;
        }
        TernEntryC te;
        te.vm_begin = static_cast<std::uint32_t>(vm_.size());
        te.vm_count = static_cast<std::uint32_t>(entry.key.size());
        for (const net::TernaryField& tf : entry.key) {
          vm_.push_back({tf.value & tf.mask, tf.mask});
        }
        if (!compile_action(*cb, entry.value, te.action, err)) return false;
        t.tern.push_back(te);
      }
    } else if (!t.keyless) {
      for (const RuntimeTable::ExactEntry& entry : rt->exact_entries()) {
        if (!entry.window.contains(compiled_epoch_)) continue;
        if (entry.key.size() != t.key_count) {
          *err = "installed key arity mismatch in table '" + tname + "'";
          return false;
        }
        ExactKey k;
        k.n = static_cast<std::uint8_t>(entry.key.size());
        for (std::size_t i = 0; i < entry.key.size(); ++i) {
          k.v[i] = entry.key[i];
        }
        ActionRef ar;
        if (!compile_action(*cb, entry.action, ar, err)) return false;
        t.exact[k] = ar;
      }
    }
  }
  return true;
}

bool CompiledPipeline::compile(std::string* err) {
  controls_.clear();
  parse_states_.clear();
  parse_edges_.clear();
  ops_.clear();
  hash_srcs_.clear();
  key_refs_.clear();
  guard_tables_.clear();
  vm_.clear();
  shapes_.clear();
  header_index_.clear();
  local_index_.clear();
  selector_ranges_.clear();
  revisions_.clear();
  ipv4_header_ = -1;
  sfc_header_ = -1;
  parser_empty_ = true;
  parse_start_ = 0;

  const p4ir::Program& program = dp_->program();
  compiled_epoch_ = dp_->epoch();

  for (const p4ir::HeaderType& h : program.header_types()) {
    header_index_.try_emplace(h.name,
                              static_cast<std::uint16_t>(header_index_.size()));
  }
  if (header_index_.size() > 64) {
    *err = "more than 64 header types (shape bitmap overflow)";
    return false;
  }
  if (auto it = header_index_.find("ipv4"); it != header_index_.end()) {
    ipv4_header_ = it->second;
  }
  if (auto it = header_index_.find("sfc"); it != header_index_.end()) {
    sfc_header_ = it->second;
  }

  // Parser automaton: one flat state per graph vertex, edges resolved
  // to direct (header, bit range) selector reads.
  const p4ir::ParserGraph& g = program.parser();
  parser_empty_ = g.vertices().empty();
  if (!parser_empty_) {
    std::unordered_map<std::uint32_t, std::uint32_t> state_of;
    for (std::uint32_t v : g.vertices()) {
      state_of.emplace(v, static_cast<std::uint32_t>(state_of.size()));
    }
    parse_states_.resize(g.vertices().size());
    for (std::uint32_t v : g.vertices()) {
      ParseStateC& st = parse_states_[state_of.at(v)];
      const p4ir::ParserTuple* tuple = nullptr;
      try {
        tuple = &dp_->ids().tuple_of(v);
      } catch (const std::out_of_range&) {
        *err = "parser vertex outside the tuple-id table";
        return false;
      }
      const p4ir::HeaderType* type =
          program.find_header_type(tuple->header_type);
      if (type == nullptr) {
        st.valid = false;  // run_parser stops here too
      } else {
        st.valid = true;
        st.header = header_index_.at(tuple->header_type);
        st.offset = tuple->offset;
        st.width = type->byte_width();
      }
      st.edge_begin = static_cast<std::uint32_t>(parse_edges_.size());
      for (const p4ir::ParserEdge& e : g.out_edges(v)) {
        ParseEdgeC ec;
        ec.is_default = e.is_default;
        if (!e.is_default) ec.select = resolve_header_field(e.select_field);
        ec.value = e.select_value;
        auto to = state_of.find(e.to);
        if (to == state_of.end()) {
          *err = "parser edge to unknown vertex";
          return false;
        }
        ec.to = to->second;
        parse_edges_.push_back(ec);
      }
      st.edge_count =
          static_cast<std::uint32_t>(parse_edges_.size()) - st.edge_begin;
    }
    auto start = state_of.find(g.start());
    if (start == state_of.end()) {
      *err = "parser start is not a vertex";
      return false;
    }
    parse_start_ = start->second;
  }
  mark_parse_selectors();

  // Per-pipelet controls.
  pipelines_ = dp_->config().spec().pipelines;
  controls_.resize(std::size_t{pipelines_} * 2);
  for (std::uint32_t p = 0; p < pipelines_; ++p) {
    if (!compile_control(
            merge::pipelet_control_name({p, asic::PipeKind::kIngress}),
            controls_[p * 2], err)) {
      return false;
    }
    if (!compile_control(
            merge::pipelet_control_name({p, asic::PipeKind::kEgress}),
            controls_[p * 2 + 1], err)) {
      return false;
    }
  }

  // Invalidation snapshot: every table the compiled program can read.
  for (const ControlC& cc : controls_) {
    for (const TableC& t : cc.tables) {
      revisions_.push_back({t.rt, t.rt->revision()});
    }
  }

  // Scratch sizing (the zero-allocation guarantee: nothing below
  // allocates per packet).
  std::size_t max_tables = 0;
  std::size_t max_branches = 0;
  for (const ControlC& cc : controls_) {
    max_tables = std::max(max_tables, cc.tables.size());
    max_branches = std::max(max_branches, std::size_t{cc.branch_count});
  }
  hdr_off_.assign(header_index_.size(), 0);
  local_val_.assign(std::max<std::size_t>(local_index_.size(), 1), 0);
  local_stamp_.assign(local_val_.size(), 0);
  hit_val_.assign(std::max<std::size_t>(max_tables, 1), 0);
  hit_stamp_.assign(hit_val_.size(), 0);
  branch_checked_stamp_.assign(std::max<std::size_t>(max_branches, 1), 0);
  pass_token_ = 0;
  present_ = 0;
  parse_dirty_ = true;

  // Compiled trace set: explorer witnesses when seeded, the parser
  // DAG's full shape universe otherwise.
  if (!seed_.witnesses.empty()) {
    collect_shapes_from_witnesses();
  } else if (!collect_all_shapes()) {
    *err = "parser shape universe overflow";
    return false;
  }

  if (!seed_.witnesses.empty() && !validated_once_) {
    if (!validate_witnesses(err)) return false;
    validated_once_ = true;
  }
  return true;
}

void CompiledPipeline::collect_shapes_from_witnesses() {
  for (const CompileSeed::Witness& w : seed_.witnesses) {
    run_parse(w.packet);
    shapes_.insert(shape_hash_);
  }
}

bool CompiledPipeline::shape_dfs(std::uint32_t state, std::uint64_t present,
                                 std::uint64_t hash, std::size_t hop) {
  if (shapes_.size() > kMaxShapes) return false;
  // Truncation (or an invalid vertex) can stop extraction right here.
  shapes_.insert(hash);
  if (hop > parse_states_.size()) return true;
  const ParseStateC& st = parse_states_[state];
  if (!st.valid) return true;
  if (!(present & (std::uint64_t{1} << st.header))) {
    present |= std::uint64_t{1} << st.header;
    hash = shape_extend(hash, st.header);
  }
  shapes_.insert(hash);  // accept / no-edge-matched / truncated later
  for (std::uint32_t i = 0; i < st.edge_count; ++i) {
    const ParseEdgeC& e = parse_edges_[st.edge_begin + i];
    if (!shape_dfs(e.to, present, hash, hop + 1)) return false;
    if (e.is_default) break;  // edges after the default are unreachable
  }
  return true;
}

bool CompiledPipeline::collect_all_shapes() {
  shapes_.insert(kFnvOffset);  // the empty parse (empty graph/packet)
  if (parser_empty_) return true;
  return shape_dfs(parse_start_, 0, kFnvOffset, 0);
}

bool CompiledPipeline::validate_witnesses(std::string* err) {
  // Replay each witness through interpreter and compiled engine on
  // private clones (registers, counters, and punt ledgers must not
  // leak into the live dataplane).
  DataPlane interp = *dp_;
  DataPlane clone = *dp_;
  CompiledPipeline compiled(clone, CompileSeed{});  // empty seed: no recursion
  const std::size_t n =
      std::min(seed_.witnesses.size(), kMaxValidatedWitnesses);
  for (std::size_t i = 0; i < n; ++i) {
    const CompileSeed::Witness& w = seed_.witnesses[i];
    SwitchOutput a = interp.process(w.packet, w.in_port);
    SwitchOutput b = compiled.process(w.packet, w.in_port);
    if (!semantically_equal(a, b)) {
      *err = "witness " + std::to_string(i) +
             " disagrees between interpreter and compiled engine";
      return false;
    }
  }
  return true;
}

// --- execution -------------------------------------------------------

void CompiledPipeline::run_parse(const net::Packet& packet) {
  present_ = 0;
  std::uint64_t hash = kFnvOffset;
  parse_dirty_ = false;
  if (parser_empty_) {
    shape_hash_ = hash;
    return;
  }
  auto bytes = packet.data().view();
  std::uint32_t state = parse_start_;
  for (std::size_t hop = 0; hop <= parse_states_.size(); ++hop) {
    const ParseStateC& st = parse_states_[state];
    if (!st.valid) break;
    if (std::size_t{st.offset} + st.width > bytes.size()) break;
    const std::uint64_t bit = std::uint64_t{1} << st.header;
    if (!(present_ & bit)) {
      present_ |= bit;
      hdr_off_[st.header] = st.offset;
      hash = shape_extend(hash, st.header);
    }
    bool advanced = false;
    for (std::uint32_t i = 0; i < st.edge_count; ++i) {
      const ParseEdgeC& e = parse_edges_[st.edge_begin + i];
      if (e.is_default) {
        state = e.to;
        advanced = true;
        break;
      }
      const FieldRefC& f = e.select;
      if (f.space != Space::kHeader ||
          !(present_ & (std::uint64_t{1} << f.header))) {
        continue;
      }
      const std::size_t abs =
          std::size_t{hdr_off_[f.header]} * 8 + f.bit_off;
      if (abs + f.bits > bytes.size() * 8) continue;
      if (read_bits(bytes, abs, f.bits) == e.value) {
        state = e.to;
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  shape_hash_ = hash;
}

void CompiledPipeline::ensure_parse(const net::Packet& packet) {
  if (parse_dirty_) run_parse(packet);
}

std::optional<std::uint64_t> CompiledPipeline::read_field(
    const FieldRefC& f, const net::Packet& packet,
    const StandardMetadata& meta) {
  switch (f.space) {
    case Space::kMeta:
      switch (f.meta) {
        case MetaField::kIngressPort:
          return meta.ingress_port;
        case MetaField::kEgressSpec:
          return meta.egress_spec;
        case MetaField::kEgressPort:
          return meta.egress_port;
        case MetaField::kPacketLength:
          return meta.packet_length;
        case MetaField::kResubmitFlag:
          return meta.resubmit_flag ? 1 : 0;
        case MetaField::kRecirculateFlag:
          return meta.recirculate_flag ? 1 : 0;
        case MetaField::kDropFlag:
          return meta.drop_flag ? 1 : 0;
        case MetaField::kMirrorFlag:
          return meta.mirror_flag ? 1 : 0;
        case MetaField::kToCpuFlag:
          return meta.to_cpu_flag ? 1 : 0;
        case MetaField::kEpoch:
          return meta.epoch;
        case MetaField::kUnknown:
          return std::nullopt;
      }
      return std::nullopt;
    case Space::kLocal:
      if (local_stamp_[f.local_slot] != pass_token_) return std::nullopt;
      return local_val_[f.local_slot];
    case Space::kHeader: {
      if (!(present_ & (std::uint64_t{1} << f.header))) return std::nullopt;
      const std::size_t abs = std::size_t{hdr_off_[f.header]} * 8 + f.bit_off;
      auto bytes = packet.data().view();
      if (abs + f.bits > bytes.size() * 8) return std::nullopt;
      return read_bits(bytes, abs, f.bits);
    }
    case Space::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

void CompiledPipeline::write_field(const FieldRefC& f, std::uint64_t value,
                                   net::Packet& packet,
                                   StandardMetadata& meta) {
  switch (f.space) {
    case Space::kMeta:
      switch (f.meta) {
        case MetaField::kIngressPort:
          meta.ingress_port = static_cast<std::uint16_t>(value & 0x1ff);
          break;
        case MetaField::kEgressSpec:
          meta.egress_spec = static_cast<std::uint16_t>(value & 0x1ff);
          break;
        case MetaField::kEgressPort:
          meta.egress_port = static_cast<std::uint16_t>(value & 0x1ff);
          break;
        case MetaField::kPacketLength:
          meta.packet_length = static_cast<std::uint32_t>(value);
          break;
        case MetaField::kResubmitFlag:
          meta.resubmit_flag = value != 0;
          break;
        case MetaField::kRecirculateFlag:
          meta.recirculate_flag = value != 0;
          break;
        case MetaField::kDropFlag:
          meta.drop_flag = value != 0;
          break;
        case MetaField::kMirrorFlag:
          meta.mirror_flag = value != 0;
          break;
        case MetaField::kToCpuFlag:
          meta.to_cpu_flag = value != 0;
          break;
        case MetaField::kEpoch:
        case MetaField::kUnknown:
          break;  // FieldView refuses these writes too
      }
      return;
    case Space::kLocal:
      local_val_[f.local_slot] = value;
      local_stamp_[f.local_slot] = pass_token_;
      return;
    case Space::kHeader: {
      if (!(present_ & (std::uint64_t{1} << f.header))) return;
      const std::size_t abs = std::size_t{hdr_off_[f.header]} * 8 + f.bit_off;
      auto bytes = packet.data().mutable_view();
      if (abs + f.bits > bytes.size() * 8) return;
      write_bits(bytes, abs, f.bits, mask_to_width(value, f.bits));
      // The interpreter's per-pipelet FieldView never re-parses on
      // field writes; the write becomes parser-visible at the *next*
      // pipelet entry (which parses fresh). Defer accordingly.
      if (f.affects_parse) parse_dirty_ = true;
      return;
    }
    case Space::kNone:
      return;
  }
}

void CompiledPipeline::run_action(ActionRef ref, net::Packet& packet,
                                  StandardMetadata& meta) {
  for (std::uint32_t i = 0; i < ref.count; ++i) {
    const OpC& op = ops_[ref.begin + i];
    switch (op.op) {
      case p4ir::PrimitiveOp::kNoop:
        break;
      case p4ir::PrimitiveOp::kSetImmediate:
      case p4ir::PrimitiveOp::kSetFromParam:
        write_field(op.dst, op.imm, packet, meta);
        break;
      case p4ir::PrimitiveOp::kCopy: {
        auto v = read_field(op.src, packet, meta);
        if (v) write_field(op.dst, *v, packet, meta);
        break;
      }
      case p4ir::PrimitiveOp::kAdd: {
        auto v = read_field(op.dst, packet, meta);
        if (v) write_field(op.dst, *v + op.imm, packet, meta);
        break;
      }
      case p4ir::PrimitiveOp::kHash: {
        net::Crc32 crc;
        for (std::uint32_t j = 0; j < op.hash_count; ++j) {
          const HashSrc& hs = hash_srcs_[op.hash_begin + j];
          const std::uint64_t v =
              read_field(hs.ref, packet, meta).value_or(0);
          for (std::uint8_t b = 0; b < hs.bytes; ++b) {
            crc.add_u8(static_cast<std::uint8_t>(
                (v >> (8 * (hs.bytes - 1 - b))) & 0xff));
          }
        }
        write_field(op.dst, crc.finish(), packet, meta);
        break;
      }
      case p4ir::PrimitiveOp::kPushSfc: {
        sfc::SfcHeader header;
        sfc::push_sfc(packet, header);
        run_parse(packet);  // FieldView::reparse equivalent
        break;
      }
      case p4ir::PrimitiveOp::kPopSfc:
        if (sfc_header_ >= 0 &&
            (present_ & (std::uint64_t{1} << sfc_header_))) {
          sfc::pop_sfc(packet);
          run_parse(packet);
        }
        break;
      case p4ir::PrimitiveOp::kDrop:
        meta.drop_flag = true;
        break;
      case p4ir::PrimitiveOp::kSetContext: {
        auto header = sfc::read_sfc(packet);
        if (header) {
          header->context.set(op.ctx_key, op.ctx_value);
          sfc::write_sfc(packet, *header);
          if (sfc_affects_parse_) parse_dirty_ = true;
        }
        break;
      }
      case p4ir::PrimitiveOp::kRegisterRead:
      case p4ir::PrimitiveOp::kRegisterAdd:
      case p4ir::PrimitiveOp::kRegisterWrite: {
        const std::uint64_t index =
            (op.reg_index_from_imm
                 ? op.imm
                 : read_field(op.src, packet, meta).value_or(0)) %
            op.reg->size();
        std::uint64_t& cell = (*op.reg)[index];
        if (op.op == p4ir::PrimitiveOp::kRegisterRead) {
          write_field(op.dst, cell, packet, meta);
        } else if (op.op == p4ir::PrimitiveOp::kRegisterAdd) {
          cell = (cell + op.imm) & op.reg_mask;
          if (op.reg_write_dst) write_field(op.dst, cell, packet, meta);
        } else {
          const std::uint64_t value =
              op.reg_value_from_imm
                  ? op.imm
                  : read_field(op.vsrc, packet, meta).value_or(0);
          cell = value & op.reg_mask;
        }
        break;
      }
    }
  }
}

void CompiledPipeline::run_control(const ControlC& cc, net::Packet& packet,
                                   StandardMetadata& meta) {
  if (!cc.present) return;  // unnamed pipelet: pass-through
  ++pass_token_;            // fresh locals / hits / branch state
  ensure_parse(packet);     // the interpreter parses at pipelet entry

  std::int32_t taken_branch = -1;
  for (const EntryC& e : cc.entries) {
    if (e.branch >= 0) {
      if (taken_branch >= 0 && e.branch != taken_branch) continue;
      if (taken_branch < 0 &&
          branch_checked_stamp_[e.branch] == pass_token_) {
        continue;  // this branch's gate already missed
      }
    }
    bool pass = true;
    if (e.has_field_guard) {
      auto v = read_field(e.guard_field, packet, meta);
      if (!v) {
        pass = false;
      } else {
        switch (e.guard_cmp) {
          case p4ir::GuardCmp::kEq:
            pass = *v == e.guard_value;
            break;
          case p4ir::GuardCmp::kNe:
            pass = *v != e.guard_value;
            break;
          case p4ir::GuardCmp::kGt:
            pass = *v > e.guard_value;
            break;
          case p4ir::GuardCmp::kLt:
            pass = *v < e.guard_value;
            break;
        }
      }
    }
    if (pass) {
      for (std::uint32_t i = 0; i < e.guard_count; ++i) {
        const std::uint32_t idx = guard_tables_[e.guard_begin + i];
        const bool hit = idx != kAbsentTable &&
                         hit_stamp_[idx] == pass_token_ &&
                         hit_val_[idx] != 0;
        const bool want_hit = e.mode != p4ir::GuardMode::kIfMiss;
        if (hit != want_hit) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) {
      if (e.branch >= 0 && taken_branch < 0) {
        branch_checked_stamp_[e.branch] = pass_token_;
      }
      continue;
    }

    const TableC& t = cc.tables[e.table];
    ActionRef act = t.default_action;
    bool hit = false;
    if (t.keyless) {
      hit = true;
    } else {
      ExactKey k;
      k.n = static_cast<std::uint8_t>(t.key_count);
      bool missing = false;
      for (std::uint32_t i = 0; i < t.key_count; ++i) {
        auto v = read_field(key_refs_[t.key_begin + i], packet, meta);
        if (!v) {
          missing = true;
          break;
        }
        k.v[i] = *v;
      }
      if (!missing) {
        if (t.is_tcam) {
          for (const TernEntryC& te : t.tern) {
            bool match = true;
            for (std::uint32_t j = 0; j < te.vm_count; ++j) {
              const auto& [value, mask] = vm_[te.vm_begin + j];
              if ((k.v[j] & mask) != value) {
                match = false;
                break;
              }
            }
            if (match) {
              hit = true;
              act = te.action;
              break;
            }
          }
        } else if (auto it = t.exact.find(k); it != t.exact.end()) {
          hit = true;
          act = it->second;
        }
      }
    }
    t.rt->record_lookup(hit);
    hit_val_[e.table] = hit ? 1 : 0;
    hit_stamp_[e.table] = pass_token_;
    if (e.branch >= 0 && taken_branch < 0) {
      branch_checked_stamp_[e.branch] = pass_token_;
      if (hit) taken_branch = e.branch;
    }
    if (act.count > 0) run_action(act, packet, meta);
  }
}

void CompiledPipeline::do_emit(net::Packet packet, std::uint16_t port,
                               SwitchOutput& out) {
  DataPlane::PortCounters& c = dp_->counters_for(port);
  c.tx_packets += 1;
  c.tx_bytes += packet.size();
  // Deparser duty (same as DataPlane::emit): refresh the IPv4 header
  // checksum. The cached parse equals emit()'s fresh run_parser — the
  // emitted copy carries the same bytes as the working packet.
  ensure_parse(packet);
  if (ipv4_header_ >= 0 && (present_ & (std::uint64_t{1} << ipv4_header_))) {
    const std::uint32_t off = hdr_off_[ipv4_header_];
    auto hdr = net::Ipv4Header::decode(packet.data().view().subspan(off));
    if (hdr) {
      hdr->encode(packet.data().mutable_slice(off, hdr->header_length()),
                  /*fill_checksum=*/true);
    }
  }
  out.out.push_back(SwitchOutput::Emitted{port, std::move(packet)});
}

SwitchOutput CompiledPipeline::fall_back(net::Packet packet,
                                         std::uint16_t in_port, bool from_cpu,
                                         std::optional<std::uint32_t> stamp) {
  ++stats_.fallback_packets;
  return dp_->process(std::move(packet), in_port, from_cpu, stamp);
}

SwitchOutput CompiledPipeline::process(net::Packet packet,
                                       std::uint16_t in_port, bool from_cpu,
                                       std::optional<std::uint32_t> stamp) {
  if (from_cpu || stamp.has_value()) {
    // CPU reinjections and stamped (possibly drained) generations are
    // the slow path by definition.
    ++stats_.reinjection_escapes;
    return fall_back(std::move(packet), in_port, from_cpu, stamp);
  }
  if (!ensure_valid()) {
    return fall_back(std::move(packet), in_port, from_cpu, stamp);
  }
  run_parse(packet);
  if (!shapes_.contains(shape_hash_)) {
    ++stats_.shape_escapes;
    return fall_back(std::move(packet), in_port, from_cpu, stamp);
  }
  ++stats_.compiled_packets;
  return run(std::move(packet), in_port);
}

SwitchOutput CompiledPipeline::run(net::Packet packet, std::uint16_t in_port) {
  SwitchOutput out;
  out.epoch = dp_->epoch();
  const asic::TargetSpec& spec = dp_->config().spec();
  if (in_port >= spec.total_ports() + spec.pipelines) {
    out.set_drop(DropCode::kInvalidIngressPort, "invalid ingress port");
    return out;
  }
  if (in_port >= spec.total_ports()) {
    out.set_drop(DropCode::kRecircPortExternal,
                 "dedicated recirculation ports take no external traffic");
    return out;
  }
  if (dp_->config().is_loopback(in_port)) {
    out.set_drop(DropCode::kLoopbackPortExternal,
                 "port " + std::to_string(in_port) +
                     " is in loopback mode and takes no external traffic");
    return out;
  }
  if (dp_->is_port_down(in_port)) {
    out.set_drop(DropCode::kPortDown,
                 "ingress port " + std::to_string(in_port) + " is down");
    return out;
  }

  StandardMetadata meta;
  meta.ingress_port = in_port;
  meta.packet_length = static_cast<std::uint32_t>(packet.size());
  meta.epoch = out.epoch;
  std::uint32_t pipeline = dp_->pipeline_of(in_port);
  {
    DataPlane::PortCounters& c = dp_->counters_for(in_port);
    c.rx_packets += 1;
    c.rx_bytes += packet.size();
  }

  const std::uint32_t max_passes = dp_->max_passes();
  for (std::uint32_t pass = 0; pass < max_passes; ++pass) {
    meta.egress_spec = sfc::kPortUnset;
    meta.clear_flags();
    run_control(controls_[std::size_t{pipeline} * 2], packet, meta);

    if (meta.to_cpu_flag) {  // toCpu outranks drop, as in process()
      out.to_cpu.push_back(
          SwitchOutput::CpuPunt{meta.ingress_port, packet, meta.epoch});
      dp_->note_punt(meta.epoch);
      return out;
    }
    if (meta.drop_flag) {
      out.set_drop(DropCode::kIngressDrop,
                   "dropped in ingress pipe " + std::to_string(pipeline));
      return out;
    }
    if (meta.resubmit_flag) {
      ++out.resubmissions;
      continue;
    }
    if (meta.egress_spec == sfc::kPortUnset) {
      out.set_drop(DropCode::kNoEgressDecision,
                   "no egress decision after ingress pipe");
      return out;
    }

    const std::uint16_t port = meta.egress_spec;
    if (port >= spec.total_ports() + spec.pipelines) {
      out.set_drop(DropCode::kInvalidEgressSpec,
                   "egress_spec " + std::to_string(port) +
                       " is not a valid port");
      return out;
    }
    if (dp_->is_port_down(port)) {
      out.set_drop(DropCode::kPortDown,
                   (dp_->loops_back(port) ? "recirculation port "
                                          : "egress port ") +
                       std::to_string(port) + " is down");
      return out;
    }

    const std::uint32_t egress_pipeline = dp_->pipeline_of(port);
    meta.egress_port = port;

    if (meta.mirror_flag && dp_->mirror_port()) {
      do_emit(packet, *dp_->mirror_port(), out);
    }

    run_control(controls_[std::size_t{egress_pipeline} * 2 + 1], packet,
                meta);

    if (meta.to_cpu_flag) {
      out.to_cpu.push_back(
          SwitchOutput::CpuPunt{meta.ingress_port, packet, meta.epoch});
      dp_->note_punt(meta.epoch);
      return out;
    }
    if (meta.drop_flag) {
      out.set_drop(DropCode::kEgressDrop, "dropped in egress pipe " +
                                              std::to_string(egress_pipeline));
      return out;
    }

    if (dp_->loops_back(port)) {
      ++out.recirculations;
      out.recirc_ports.push_back(port);
      DataPlane::PortCounters& c = dp_->counters_for(port);
      c.tx_packets += 1;
      c.tx_bytes += packet.size();
      c.rx_packets += 1;
      c.rx_bytes += packet.size();
      pipeline = egress_pipeline;
      meta.ingress_port = port;
      continue;
    }
    do_emit(std::move(packet), port, out);
    return out;
  }

  // The pass cap is enforced in-line (not via fallback): by the time
  // the cap trips, register and counter side effects of the earlier
  // passes are already applied, and a restart through the interpreter
  // would double them.
  out.set_drop(DropCode::kMaxPassesExceeded,
               "packet exceeded " + std::to_string(max_passes) +
                   " pipeline passes (routing loop?)");
  if (!out.recirc_ports.empty()) {
    out.drop_reason += "; recirc ports:";
    for (std::uint16_t p : out.recirc_ports) {
      out.drop_reason += " " + std::to_string(p);
    }
  }
  return out;
}

}  // namespace dejavu::sim
