// The Dejavu SFC header (paper §3, Fig. 3), an NSH-inspired header
// embedded between Ethernet and IP and announced by a dedicated
// EtherType:
//
//   +---------------------+----------------+
//   | service path ID     | 2 bytes        |
//   | service index       | 1 byte         |
//   | platform metadata   | 4 bytes        |
//   | context data (K/V)  | 12 bytes       |
//   | next protocol       | 1 byte         |
//   +---------------------+----------------+
//
// Platform metadata packs: inPort (9b), outPort (9b), and the five
// flags resubmit / recirculate / drop / mirror / toCpu. Context data is
// four slots of 1-byte key + 2-byte value (key 0 = empty slot).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/packet.hpp"

namespace dejavu::sfc {

inline constexpr std::size_t kSfcHeaderSize = 20;

/// Sentinel for "output port not yet decided" in platform metadata.
inline constexpr std::uint16_t kPortUnset = 0x1ff;

/// Next-protocol codes carried in the SFC header's trailing byte.
enum class NextProtocol : std::uint8_t {
  kNone = 0x00,
  kIpv4 = 0x01,
  kEthernet = 0x03,
};

/// The platform metadata copy carried in the SFC header (§3): the
/// physical ingress/egress ports plus the five steering flags. NFs set
/// these through the hdr argument; the framework's check_sfcFlags glue
/// translates them into actual platform behavior.
struct PlatformMetadata {
  std::uint16_t in_port = kPortUnset;   // 9 bits on the wire
  std::uint16_t out_port = kPortUnset;  // 9 bits on the wire
  bool resubmit = false;
  bool recirculate = false;
  bool drop = false;
  bool mirror = false;
  bool to_cpu = false;

  bool has_out_port() const { return out_port != kPortUnset; }
  bool operator==(const PlatformMetadata&) const = default;
};

/// The 12-byte context area: four slots of (1-byte key, 2-byte value).
/// Keys are tenant-defined (e.g. tenant ID, application ID, debug tag);
/// key 0 marks an empty slot.
class ContextData {
 public:
  static constexpr std::size_t kSlots = 4;
  static constexpr std::size_t kWireSize = 12;

  /// Set key -> value. Reuses the slot if the key exists, otherwise
  /// takes the first empty slot. Returns false when full and the key is
  /// new. key must be non-zero.
  bool set(std::uint8_t key, std::uint16_t value);

  std::optional<std::uint16_t> get(std::uint8_t key) const;
  bool erase(std::uint8_t key);
  std::size_t used_slots() const;

  void encode(std::span<std::byte> out) const;  // writes kWireSize bytes
  static ContextData decode(std::span<const std::byte> data);

  bool operator==(const ContextData&) const = default;

 private:
  struct Slot {
    std::uint8_t key = 0;
    std::uint16_t value = 0;
    bool operator==(const Slot&) const = default;
  };
  std::array<Slot, kSlots> slots_{};
};

/// The full SFC header value.
struct SfcHeader {
  std::uint16_t service_path_id = 0;
  std::uint8_t service_index = 0;
  PlatformMetadata meta;
  ContextData context;
  NextProtocol next_protocol = NextProtocol::kIpv4;

  void encode(std::span<std::byte> out) const;  // kSfcHeaderSize bytes
  static std::optional<SfcHeader> decode(std::span<const std::byte> data);

  std::string to_string() const;
  bool operator==(const SfcHeader&) const = default;
};

/// Read the SFC header of a packet (nullopt when the packet carries
/// none or is truncated).
std::optional<SfcHeader> read_sfc(const net::Packet& packet);

/// Overwrite the SFC header of a packet that already carries one.
/// Throws std::logic_error if the packet has no SFC header.
void write_sfc(net::Packet& packet, const SfcHeader& header);

/// Insert an SFC header between Ethernet and IP (done by the Classifier
/// in the paper). Sets the Ethernet EtherType to the SFC EtherType and
/// records the displaced EtherType in next_protocol.
/// Throws std::logic_error if the packet already has one.
void push_sfc(net::Packet& packet, SfcHeader header);

/// Remove the SFC header (done by the Router before the packet leaves
/// the switch), restoring the EtherType from next_protocol. Returns the
/// removed header. Throws std::logic_error if absent.
SfcHeader pop_sfc(net::Packet& packet);

}  // namespace dejavu::sfc
