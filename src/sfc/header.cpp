#include "sfc/header.hpp"

#include <stdexcept>

#include "net/bytes.hpp"

namespace dejavu::sfc {

using net::read_be16;
using net::read_u8;
using net::write_be16;
using net::write_u8;

bool ContextData::set(std::uint8_t key, std::uint16_t value) {
  if (key == 0) return false;
  for (Slot& s : slots_) {
    if (s.key == key) {
      s.value = value;
      return true;
    }
  }
  for (Slot& s : slots_) {
    if (s.key == 0) {
      s = Slot{key, value};
      return true;
    }
  }
  return false;
}

std::optional<std::uint16_t> ContextData::get(std::uint8_t key) const {
  for (const Slot& s : slots_) {
    if (s.key == key && key != 0) return s.value;
  }
  return std::nullopt;
}

bool ContextData::erase(std::uint8_t key) {
  for (Slot& s : slots_) {
    if (s.key == key && key != 0) {
      s = Slot{};
      return true;
    }
  }
  return false;
}

std::size_t ContextData::used_slots() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) n += s.key != 0;
  return n;
}

void ContextData::encode(std::span<std::byte> out) const {
  for (std::size_t i = 0; i < kSlots; ++i) {
    write_u8(out, i * 3, slots_[i].key);
    write_be16(out, i * 3 + 1, slots_[i].value);
  }
}

ContextData ContextData::decode(std::span<const std::byte> data) {
  ContextData ctx;
  for (std::size_t i = 0; i < kSlots; ++i) {
    ctx.slots_[i].key = read_u8(data, i * 3);
    ctx.slots_[i].value = read_be16(data, i * 3 + 1);
  }
  return ctx;
}

namespace {

// Platform metadata wire layout (4 bytes):
//   [31:23] inPort, [22:14] outPort, [13] resubmit, [12] recirculate,
//   [11] drop, [10] mirror, [9] toCpu, [8:0] reserved (zero).
std::uint32_t pack_meta(const PlatformMetadata& m) {
  std::uint32_t v = 0;
  v |= std::uint32_t{m.in_port & 0x1ffu} << 23;
  v |= std::uint32_t{m.out_port & 0x1ffu} << 14;
  v |= std::uint32_t{m.resubmit} << 13;
  v |= std::uint32_t{m.recirculate} << 12;
  v |= std::uint32_t{m.drop} << 11;
  v |= std::uint32_t{m.mirror} << 10;
  v |= std::uint32_t{m.to_cpu} << 9;
  return v;
}

PlatformMetadata unpack_meta(std::uint32_t v) {
  PlatformMetadata m;
  m.in_port = static_cast<std::uint16_t>((v >> 23) & 0x1ff);
  m.out_port = static_cast<std::uint16_t>((v >> 14) & 0x1ff);
  m.resubmit = (v >> 13) & 1;
  m.recirculate = (v >> 12) & 1;
  m.drop = (v >> 11) & 1;
  m.mirror = (v >> 10) & 1;
  m.to_cpu = (v >> 9) & 1;
  return m;
}

}  // namespace

void SfcHeader::encode(std::span<std::byte> out) const {
  write_be16(out, 0, service_path_id);
  write_u8(out, 2, service_index);
  net::write_be32(out, 3, pack_meta(meta));
  context.encode(out.subspan(7, ContextData::kWireSize));
  write_u8(out, 19, static_cast<std::uint8_t>(next_protocol));
}

std::optional<SfcHeader> SfcHeader::decode(std::span<const std::byte> data) {
  if (data.size() < kSfcHeaderSize) return std::nullopt;
  SfcHeader h;
  h.service_path_id = read_be16(data, 0);
  h.service_index = read_u8(data, 2);
  h.meta = unpack_meta(net::read_be32(data, 3));
  h.context = ContextData::decode(data.subspan(7, ContextData::kWireSize));
  h.next_protocol = static_cast<NextProtocol>(read_u8(data, 19));
  return h;
}

std::string SfcHeader::to_string() const {
  std::string s = "sfc{path=" + std::to_string(service_path_id) +
                  " idx=" + std::to_string(service_index);
  if (meta.in_port != kPortUnset) {
    s += " in=" + std::to_string(meta.in_port);
  }
  if (meta.has_out_port()) s += " out=" + std::to_string(meta.out_port);
  if (meta.resubmit) s += " RESUB";
  if (meta.recirculate) s += " RECIRC";
  if (meta.drop) s += " DROP";
  if (meta.mirror) s += " MIRROR";
  if (meta.to_cpu) s += " TOCPU";
  s += "}";
  return s;
}

std::optional<SfcHeader> read_sfc(const net::Packet& packet) {
  if (!packet.has_sfc_header()) return std::nullopt;
  if (packet.size() < net::EthernetHeader::kSize + kSfcHeaderSize) {
    return std::nullopt;
  }
  return SfcHeader::decode(
      packet.data().view().subspan(net::EthernetHeader::kSize));
}

void write_sfc(net::Packet& packet, const SfcHeader& header) {
  if (!packet.has_sfc_header()) {
    throw std::logic_error("write_sfc: packet has no SFC header");
  }
  header.encode(packet.data().mutable_slice(net::EthernetHeader::kSize,
                                            kSfcHeaderSize));
}

void push_sfc(net::Packet& packet, SfcHeader header) {
  if (packet.has_sfc_header()) {
    throw std::logic_error("push_sfc: packet already has an SFC header");
  }
  auto eth = packet.ethernet();
  if (!eth) throw std::logic_error("push_sfc: truncated Ethernet frame");
  // Record the displaced EtherType so pop_sfc can restore it.
  header.next_protocol = eth->ether_type == net::kEtherTypeIpv4
                             ? NextProtocol::kIpv4
                             : NextProtocol::kEthernet;
  packet.data().insert_zeros(net::EthernetHeader::kSize, kSfcHeaderSize);
  header.encode(packet.data().mutable_slice(net::EthernetHeader::kSize,
                                            kSfcHeaderSize));
  eth->ether_type = net::kEtherTypeSfc;
  packet.set_ethernet(*eth);
}

SfcHeader pop_sfc(net::Packet& packet) {
  auto header = read_sfc(packet);
  if (!header) throw std::logic_error("pop_sfc: packet has no SFC header");
  packet.data().erase(net::EthernetHeader::kSize, kSfcHeaderSize);
  auto eth = packet.ethernet();
  eth->ether_type = header->next_protocol == NextProtocol::kIpv4
                        ? net::kEtherTypeIpv4
                        : net::kEtherTypeArp;
  packet.set_ethernet(*eth);
  return *header;
}

}  // namespace dejavu::sfc
