#include "sfc/chain.hpp"

#include <algorithm>
#include <stdexcept>

namespace dejavu::sfc {

void PolicySet::add(ChainPolicy policy) {
  if (policy.nfs.empty()) {
    throw std::invalid_argument("chain policy '" + policy.name +
                                "' has no NFs");
  }
  if (policy.weight < 0) {
    throw std::invalid_argument("chain policy '" + policy.name +
                                "' has negative weight");
  }
  if (find(policy.path_id) != nullptr) {
    throw std::invalid_argument("duplicate service path ID " +
                                std::to_string(policy.path_id));
  }
  std::set<std::string> seen;
  for (const auto& nf : policy.nfs) {
    if (!seen.insert(nf).second) {
      throw std::invalid_argument("chain policy '" + policy.name +
                                  "' visits NF '" + nf + "' twice");
    }
  }
  policies_.push_back(std::move(policy));
}

const ChainPolicy* PolicySet::find(std::uint16_t path_id) const {
  for (const auto& p : policies_) {
    if (p.path_id == path_id) return &p;
  }
  return nullptr;
}

std::optional<std::string> PolicySet::nf_at(std::uint16_t path_id,
                                            std::uint8_t service_index) const {
  const ChainPolicy* p = find(path_id);
  if (p == nullptr || service_index >= p->nfs.size()) return std::nullopt;
  return p->nfs[service_index];
}

std::vector<std::string> PolicySet::all_nfs() const {
  std::set<std::string> names;
  for (const auto& p : policies_) {
    names.insert(p.nfs.begin(), p.nfs.end());
  }
  return {names.begin(), names.end()};
}

double PolicySet::total_weight() const {
  double sum = 0;
  for (const auto& p : policies_) sum += p.weight;
  return sum;
}

PolicySet fig2_policies(double w_full, double w_vgw, double w_direct,
                        std::uint16_t in_port, std::uint16_t exit_port) {
  PolicySet set;
  set.add(ChainPolicy{
      .path_id = 1,
      .name = "full",
      .nfs = {kClassifier, kFirewall, kVgw, kLoadBalancer, kRouter},
      .weight = w_full,
      .in_port = in_port,
      .exit_port = exit_port,
      .terminal_pops_sfc = true});
  set.add(ChainPolicy{.path_id = 2,
                      .name = "vgw-only",
                      .nfs = {kClassifier, kVgw, kRouter},
                      .weight = w_vgw,
                      .in_port = in_port,
                      .exit_port = exit_port,
                      .terminal_pops_sfc = true});
  set.add(ChainPolicy{.path_id = 3,
                      .name = "direct",
                      .nfs = {kClassifier, kRouter},
                      .weight = w_direct,
                      .in_port = in_port,
                      .exit_port = exit_port,
                      .terminal_pops_sfc = true});
  return set;
}

}  // namespace dejavu::sfc
