// Service chain policies: which NFs a class of traffic must traverse,
// in what order, and what fraction of traffic follows each policy
// (the per-policy weight of the placement objective, §3.3).
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace dejavu::sfc {

/// One chaining policy: an ordered NF sequence identified by a service
/// path ID. The service index in the SFC header counts positions in
/// `nfs` starting from 0; index == nfs.size() means "chain complete".
struct ChainPolicy {
  std::uint16_t path_id = 0;
  std::string name;
  std::vector<std::string> nfs;
  /// Fraction of total traffic following this policy (used as the
  /// weight in the placement objective). Need not be normalized.
  double weight = 1.0;
  /// Physical port this policy's traffic arrives on (decides the
  /// ingress pipelet where processing starts).
  std::uint16_t in_port = 0;
  /// Physical port the traffic must leave from after the chain
  /// completes ("packets should be eventually forwarded to a port on
  /// Egress 0", Fig. 6).
  std::uint16_t exit_port = 0;
  /// True when the chain's terminal NF removes the SFC header (the
  /// framework Router does, §3). Constrains placement: such an NF must
  /// run on an ingress pipe or on the exit egress pipe, since a popped
  /// packet carries no steering state for further loops.
  bool terminal_pops_sfc = false;

  bool operator==(const ChainPolicy&) const = default;
};

/// A validated set of chain policies.
class PolicySet {
 public:
  PolicySet() = default;

  /// Add a policy. Throws std::invalid_argument on duplicate path IDs,
  /// empty NF lists, repeated NFs within one chain, or negative weight.
  void add(ChainPolicy policy);

  const std::vector<ChainPolicy>& policies() const { return policies_; }
  std::size_t size() const { return policies_.size(); }
  bool empty() const { return policies_.empty(); }

  const ChainPolicy* find(std::uint16_t path_id) const;

  /// The NF at `service_index` of path `path_id`, or nullopt when the
  /// index is past the end of the chain (service complete) or the path
  /// is unknown.
  std::optional<std::string> nf_at(std::uint16_t path_id,
                                   std::uint8_t service_index) const;

  /// The union of NF names across all policies, sorted.
  std::vector<std::string> all_nfs() const;

  /// Sum of policy weights (for normalizing the placement objective).
  double total_weight() const;

 private:
  std::vector<ChainPolicy> policies_;
};

/// The example policy set of Fig. 2: three paths through {Classifier,
/// FW, VGW, LB, Router}. Weights default to the given traffic split;
/// all paths arrive on `in_port` and leave via `exit_port`.
PolicySet fig2_policies(double w_full = 0.5, double w_vgw = 0.3,
                        double w_direct = 0.2, std::uint16_t in_port = 0,
                        std::uint16_t exit_port = 1);

/// Canonical NF names used by the Fig. 2 example and the prototype.
inline constexpr const char* kClassifier = "Classifier";
inline constexpr const char* kFirewall = "FW";
inline constexpr const char* kVgw = "VGW";
inline constexpr const char* kLoadBalancer = "LB";
inline constexpr const char* kRouter = "Router";

}  // namespace dejavu::sfc
