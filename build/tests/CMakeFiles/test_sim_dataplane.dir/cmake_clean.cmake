file(REMOVE_RECURSE
  "CMakeFiles/test_sim_dataplane.dir/test_sim_dataplane.cpp.o"
  "CMakeFiles/test_sim_dataplane.dir/test_sim_dataplane.cpp.o.d"
  "test_sim_dataplane"
  "test_sim_dataplane.pdb"
  "test_sim_dataplane[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
