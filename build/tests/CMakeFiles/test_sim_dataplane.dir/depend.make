# Empty dependencies file for test_sim_dataplane.
# This may be replaced when dependencies are built.
