file(REMOVE_RECURSE
  "CMakeFiles/test_net_checksum.dir/test_net_checksum.cpp.o"
  "CMakeFiles/test_net_checksum.dir/test_net_checksum.cpp.o.d"
  "test_net_checksum"
  "test_net_checksum.pdb"
  "test_net_checksum[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
