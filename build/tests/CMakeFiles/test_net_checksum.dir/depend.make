# Empty dependencies file for test_net_checksum.
# This may be replaced when dependencies are built.
