file(REMOVE_RECURSE
  "CMakeFiles/test_sfc_header.dir/test_sfc_header.cpp.o"
  "CMakeFiles/test_sfc_header.dir/test_sfc_header.cpp.o.d"
  "test_sfc_header"
  "test_sfc_header.pdb"
  "test_sfc_header[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfc_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
