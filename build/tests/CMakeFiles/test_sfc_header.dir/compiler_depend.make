# Empty compiler generated dependencies file for test_sfc_header.
# This may be replaced when dependencies are built.
