file(REMOVE_RECURSE
  "CMakeFiles/test_net_lpm.dir/test_net_lpm.cpp.o"
  "CMakeFiles/test_net_lpm.dir/test_net_lpm.cpp.o.d"
  "test_net_lpm"
  "test_net_lpm.pdb"
  "test_net_lpm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_lpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
