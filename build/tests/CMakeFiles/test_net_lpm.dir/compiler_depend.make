# Empty compiler generated dependencies file for test_net_lpm.
# This may be replaced when dependencies are built.
