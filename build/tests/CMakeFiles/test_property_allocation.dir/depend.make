# Empty dependencies file for test_property_allocation.
# This may be replaced when dependencies are built.
