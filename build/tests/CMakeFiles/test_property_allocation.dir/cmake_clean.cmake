file(REMOVE_RECURSE
  "CMakeFiles/test_property_allocation.dir/test_property_allocation.cpp.o"
  "CMakeFiles/test_property_allocation.dir/test_property_allocation.cpp.o.d"
  "test_property_allocation"
  "test_property_allocation.pdb"
  "test_property_allocation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
