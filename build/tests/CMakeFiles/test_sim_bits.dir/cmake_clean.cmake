file(REMOVE_RECURSE
  "CMakeFiles/test_sim_bits.dir/test_sim_bits.cpp.o"
  "CMakeFiles/test_sim_bits.dir/test_sim_bits.cpp.o.d"
  "test_sim_bits"
  "test_sim_bits.pdb"
  "test_sim_bits[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
