# Empty compiler generated dependencies file for test_net_addr.
# This may be replaced when dependencies are built.
