file(REMOVE_RECURSE
  "CMakeFiles/test_net_addr.dir/test_net_addr.cpp.o"
  "CMakeFiles/test_net_addr.dir/test_net_addr.cpp.o.d"
  "test_net_addr"
  "test_net_addr.pdb"
  "test_net_addr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
