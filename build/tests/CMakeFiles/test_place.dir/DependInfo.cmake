
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_place.cpp" "tests/CMakeFiles/test_place.dir/test_place.cpp.o" "gcc" "tests/CMakeFiles/test_place.dir/test_place.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ptf/CMakeFiles/dejavu_ptf.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/dejavu_control.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dejavu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/dejavu_route.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/dejavu_place.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/dejavu_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/dejavu_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/dejavu_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/dejavu_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/p4ir/CMakeFiles/dejavu_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/dejavu_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dejavu_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
