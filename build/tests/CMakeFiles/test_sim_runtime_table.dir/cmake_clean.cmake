file(REMOVE_RECURSE
  "CMakeFiles/test_sim_runtime_table.dir/test_sim_runtime_table.cpp.o"
  "CMakeFiles/test_sim_runtime_table.dir/test_sim_runtime_table.cpp.o.d"
  "test_sim_runtime_table"
  "test_sim_runtime_table.pdb"
  "test_sim_runtime_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_runtime_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
