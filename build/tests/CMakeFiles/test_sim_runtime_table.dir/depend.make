# Empty dependencies file for test_sim_runtime_table.
# This may be replaced when dependencies are built.
