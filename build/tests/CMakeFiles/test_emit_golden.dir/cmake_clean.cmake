file(REMOVE_RECURSE
  "CMakeFiles/test_emit_golden.dir/test_emit_golden.cpp.o"
  "CMakeFiles/test_emit_golden.dir/test_emit_golden.cpp.o.d"
  "test_emit_golden"
  "test_emit_golden.pdb"
  "test_emit_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emit_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
