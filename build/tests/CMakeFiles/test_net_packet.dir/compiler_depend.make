# Empty compiler generated dependencies file for test_net_packet.
# This may be replaced when dependencies are built.
