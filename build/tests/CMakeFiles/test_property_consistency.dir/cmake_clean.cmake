file(REMOVE_RECURSE
  "CMakeFiles/test_property_consistency.dir/test_property_consistency.cpp.o"
  "CMakeFiles/test_property_consistency.dir/test_property_consistency.cpp.o.d"
  "test_property_consistency"
  "test_property_consistency.pdb"
  "test_property_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
