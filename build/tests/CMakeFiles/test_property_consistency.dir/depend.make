# Empty dependencies file for test_property_consistency.
# This may be replaced when dependencies are built.
