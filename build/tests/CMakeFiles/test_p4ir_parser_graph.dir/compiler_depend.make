# Empty compiler generated dependencies file for test_p4ir_parser_graph.
# This may be replaced when dependencies are built.
