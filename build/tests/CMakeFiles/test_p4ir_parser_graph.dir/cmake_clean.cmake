file(REMOVE_RECURSE
  "CMakeFiles/test_p4ir_parser_graph.dir/test_p4ir_parser_graph.cpp.o"
  "CMakeFiles/test_p4ir_parser_graph.dir/test_p4ir_parser_graph.cpp.o.d"
  "test_p4ir_parser_graph"
  "test_p4ir_parser_graph.pdb"
  "test_p4ir_parser_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4ir_parser_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
