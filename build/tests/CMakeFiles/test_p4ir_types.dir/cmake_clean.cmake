file(REMOVE_RECURSE
  "CMakeFiles/test_p4ir_types.dir/test_p4ir_types.cpp.o"
  "CMakeFiles/test_p4ir_types.dir/test_p4ir_types.cpp.o.d"
  "test_p4ir_types"
  "test_p4ir_types.pdb"
  "test_p4ir_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4ir_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
