# Empty dependencies file for test_p4ir_types.
# This may be replaced when dependencies are built.
