# Empty dependencies file for test_p4ir_resources.
# This may be replaced when dependencies are built.
