file(REMOVE_RECURSE
  "CMakeFiles/test_p4ir_resources.dir/test_p4ir_resources.cpp.o"
  "CMakeFiles/test_p4ir_resources.dir/test_p4ir_resources.cpp.o.d"
  "test_p4ir_resources"
  "test_p4ir_resources.pdb"
  "test_p4ir_resources[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4ir_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
