file(REMOVE_RECURSE
  "CMakeFiles/test_misc_api.dir/test_misc_api.cpp.o"
  "CMakeFiles/test_misc_api.dir/test_misc_api.cpp.o.d"
  "test_misc_api"
  "test_misc_api.pdb"
  "test_misc_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_misc_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
