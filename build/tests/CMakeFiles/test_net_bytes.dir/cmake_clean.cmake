file(REMOVE_RECURSE
  "CMakeFiles/test_net_bytes.dir/test_net_bytes.cpp.o"
  "CMakeFiles/test_net_bytes.dir/test_net_bytes.cpp.o.d"
  "test_net_bytes"
  "test_net_bytes.pdb"
  "test_net_bytes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_bytes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
