# Empty dependencies file for test_net_bytes.
# This may be replaced when dependencies are built.
