file(REMOVE_RECURSE
  "CMakeFiles/test_property_merge.dir/test_property_merge.cpp.o"
  "CMakeFiles/test_property_merge.dir/test_property_merge.cpp.o.d"
  "test_property_merge"
  "test_property_merge.pdb"
  "test_property_merge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
