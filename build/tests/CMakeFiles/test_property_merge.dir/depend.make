# Empty dependencies file for test_property_merge.
# This may be replaced when dependencies are built.
