# Empty dependencies file for test_sfc_chain.
# This may be replaced when dependencies are built.
