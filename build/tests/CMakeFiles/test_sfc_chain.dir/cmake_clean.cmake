file(REMOVE_RECURSE
  "CMakeFiles/test_sfc_chain.dir/test_sfc_chain.cpp.o"
  "CMakeFiles/test_sfc_chain.dir/test_sfc_chain.cpp.o.d"
  "test_sfc_chain"
  "test_sfc_chain.pdb"
  "test_sfc_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sfc_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
