file(REMOVE_RECURSE
  "CMakeFiles/test_ptf.dir/test_ptf.cpp.o"
  "CMakeFiles/test_ptf.dir/test_ptf.cpp.o.d"
  "test_ptf"
  "test_ptf.pdb"
  "test_ptf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
