# Empty compiler generated dependencies file for test_ptf.
# This may be replaced when dependencies are built.
