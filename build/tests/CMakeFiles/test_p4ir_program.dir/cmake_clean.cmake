file(REMOVE_RECURSE
  "CMakeFiles/test_p4ir_program.dir/test_p4ir_program.cpp.o"
  "CMakeFiles/test_p4ir_program.dir/test_p4ir_program.cpp.o.d"
  "test_p4ir_program"
  "test_p4ir_program.pdb"
  "test_p4ir_program[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4ir_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
