# Empty dependencies file for test_sim_fields.
# This may be replaced when dependencies are built.
