file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fields.dir/test_sim_fields.cpp.o"
  "CMakeFiles/test_sim_fields.dir/test_sim_fields.cpp.o.d"
  "test_sim_fields"
  "test_sim_fields.pdb"
  "test_sim_fields[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
