# Empty dependencies file for test_sim_parse.
# This may be replaced when dependencies are built.
