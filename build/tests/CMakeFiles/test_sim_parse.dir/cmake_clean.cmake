file(REMOVE_RECURSE
  "CMakeFiles/test_sim_parse.dir/test_sim_parse.cpp.o"
  "CMakeFiles/test_sim_parse.dir/test_sim_parse.cpp.o.d"
  "test_sim_parse"
  "test_sim_parse.pdb"
  "test_sim_parse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
