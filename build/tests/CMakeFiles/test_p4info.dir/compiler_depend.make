# Empty compiler generated dependencies file for test_p4info.
# This may be replaced when dependencies are built.
