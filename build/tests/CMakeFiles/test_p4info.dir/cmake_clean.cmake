file(REMOVE_RECURSE
  "CMakeFiles/test_p4info.dir/test_p4info.cpp.o"
  "CMakeFiles/test_p4info.dir/test_p4info.cpp.o.d"
  "test_p4info"
  "test_p4info.pdb"
  "test_p4info[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
