file(REMOVE_RECURSE
  "CMakeFiles/test_property_traversal.dir/test_property_traversal.cpp.o"
  "CMakeFiles/test_property_traversal.dir/test_property_traversal.cpp.o.d"
  "test_property_traversal"
  "test_property_traversal.pdb"
  "test_property_traversal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
