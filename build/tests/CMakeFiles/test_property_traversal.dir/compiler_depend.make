# Empty compiler generated dependencies file for test_property_traversal.
# This may be replaced when dependencies are built.
