# Empty compiler generated dependencies file for test_net_tcam.
# This may be replaced when dependencies are built.
