file(REMOVE_RECURSE
  "CMakeFiles/test_net_tcam.dir/test_net_tcam.cpp.o"
  "CMakeFiles/test_net_tcam.dir/test_net_tcam.cpp.o.d"
  "test_net_tcam"
  "test_net_tcam.pdb"
  "test_net_tcam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_tcam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
