# Empty compiler generated dependencies file for test_p4ir_emit.
# This may be replaced when dependencies are built.
