file(REMOVE_RECURSE
  "CMakeFiles/test_p4ir_emit.dir/test_p4ir_emit.cpp.o"
  "CMakeFiles/test_p4ir_emit.dir/test_p4ir_emit.cpp.o.d"
  "test_p4ir_emit"
  "test_p4ir_emit.pdb"
  "test_p4ir_emit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4ir_emit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
