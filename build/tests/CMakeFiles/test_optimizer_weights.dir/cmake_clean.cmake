file(REMOVE_RECURSE
  "CMakeFiles/test_optimizer_weights.dir/test_optimizer_weights.cpp.o"
  "CMakeFiles/test_optimizer_weights.dir/test_optimizer_weights.cpp.o.d"
  "test_optimizer_weights"
  "test_optimizer_weights.pdb"
  "test_optimizer_weights[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optimizer_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
