# Empty compiler generated dependencies file for test_optimizer_weights.
# This may be replaced when dependencies are built.
