file(REMOVE_RECURSE
  "CMakeFiles/test_extension_chains.dir/test_extension_chains.cpp.o"
  "CMakeFiles/test_extension_chains.dir/test_extension_chains.cpp.o.d"
  "test_extension_chains"
  "test_extension_chains.pdb"
  "test_extension_chains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extension_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
