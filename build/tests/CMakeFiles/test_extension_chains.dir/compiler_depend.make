# Empty compiler generated dependencies file for test_extension_chains.
# This may be replaced when dependencies are built.
