# Empty compiler generated dependencies file for test_p4ir_deps.
# This may be replaced when dependencies are built.
