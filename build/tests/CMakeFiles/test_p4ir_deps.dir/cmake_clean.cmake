file(REMOVE_RECURSE
  "CMakeFiles/test_p4ir_deps.dir/test_p4ir_deps.cpp.o"
  "CMakeFiles/test_p4ir_deps.dir/test_p4ir_deps.cpp.o.d"
  "test_p4ir_deps"
  "test_p4ir_deps.pdb"
  "test_p4ir_deps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p4ir_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
