file(REMOVE_RECURSE
  "CMakeFiles/dejavu_route.dir/routing.cpp.o"
  "CMakeFiles/dejavu_route.dir/routing.cpp.o.d"
  "libdejavu_route.a"
  "libdejavu_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
