# Empty dependencies file for dejavu_route.
# This may be replaced when dependencies are built.
