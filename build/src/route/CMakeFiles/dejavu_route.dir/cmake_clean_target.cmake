file(REMOVE_RECURSE
  "libdejavu_route.a"
)
