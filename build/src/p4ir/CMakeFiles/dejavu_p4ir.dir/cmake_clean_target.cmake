file(REMOVE_RECURSE
  "libdejavu_p4ir.a"
)
