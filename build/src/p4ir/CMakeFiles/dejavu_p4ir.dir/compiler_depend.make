# Empty compiler generated dependencies file for dejavu_p4ir.
# This may be replaced when dependencies are built.
