file(REMOVE_RECURSE
  "CMakeFiles/dejavu_p4ir.dir/action.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/action.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/control.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/control.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/deps.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/deps.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/emit.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/emit.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/parser_graph.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/parser_graph.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/program.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/program.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/resources.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/resources.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/table.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/table.cpp.o.d"
  "CMakeFiles/dejavu_p4ir.dir/types.cpp.o"
  "CMakeFiles/dejavu_p4ir.dir/types.cpp.o.d"
  "libdejavu_p4ir.a"
  "libdejavu_p4ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_p4ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
