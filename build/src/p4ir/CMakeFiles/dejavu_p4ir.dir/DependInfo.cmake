
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4ir/action.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/action.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/action.cpp.o.d"
  "/root/repo/src/p4ir/control.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/control.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/control.cpp.o.d"
  "/root/repo/src/p4ir/deps.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/deps.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/deps.cpp.o.d"
  "/root/repo/src/p4ir/emit.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/emit.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/emit.cpp.o.d"
  "/root/repo/src/p4ir/parser_graph.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/parser_graph.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/parser_graph.cpp.o.d"
  "/root/repo/src/p4ir/program.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/program.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/program.cpp.o.d"
  "/root/repo/src/p4ir/resources.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/resources.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/resources.cpp.o.d"
  "/root/repo/src/p4ir/table.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/table.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/table.cpp.o.d"
  "/root/repo/src/p4ir/types.cpp" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/types.cpp.o" "gcc" "src/p4ir/CMakeFiles/dejavu_p4ir.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
