file(REMOVE_RECURSE
  "libdejavu_control.a"
)
