file(REMOVE_RECURSE
  "CMakeFiles/dejavu_control.dir/control_plane.cpp.o"
  "CMakeFiles/dejavu_control.dir/control_plane.cpp.o.d"
  "CMakeFiles/dejavu_control.dir/deployment.cpp.o"
  "CMakeFiles/dejavu_control.dir/deployment.cpp.o.d"
  "CMakeFiles/dejavu_control.dir/p4info.cpp.o"
  "CMakeFiles/dejavu_control.dir/p4info.cpp.o.d"
  "CMakeFiles/dejavu_control.dir/snapshot.cpp.o"
  "CMakeFiles/dejavu_control.dir/snapshot.cpp.o.d"
  "libdejavu_control.a"
  "libdejavu_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
