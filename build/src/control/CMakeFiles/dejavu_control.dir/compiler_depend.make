# Empty compiler generated dependencies file for dejavu_control.
# This may be replaced when dependencies are built.
