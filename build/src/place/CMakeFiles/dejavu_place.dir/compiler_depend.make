# Empty compiler generated dependencies file for dejavu_place.
# This may be replaced when dependencies are built.
