file(REMOVE_RECURSE
  "CMakeFiles/dejavu_place.dir/cluster.cpp.o"
  "CMakeFiles/dejavu_place.dir/cluster.cpp.o.d"
  "CMakeFiles/dejavu_place.dir/optimizer.cpp.o"
  "CMakeFiles/dejavu_place.dir/optimizer.cpp.o.d"
  "CMakeFiles/dejavu_place.dir/placement.cpp.o"
  "CMakeFiles/dejavu_place.dir/placement.cpp.o.d"
  "libdejavu_place.a"
  "libdejavu_place.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_place.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
