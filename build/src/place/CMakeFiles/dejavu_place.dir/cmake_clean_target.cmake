file(REMOVE_RECURSE
  "libdejavu_place.a"
)
