file(REMOVE_RECURSE
  "libdejavu_nf.a"
)
