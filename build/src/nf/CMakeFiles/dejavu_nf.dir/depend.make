# Empty dependencies file for dejavu_nf.
# This may be replaced when dependencies are built.
