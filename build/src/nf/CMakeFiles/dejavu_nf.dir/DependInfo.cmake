
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/nfs.cpp" "src/nf/CMakeFiles/dejavu_nf.dir/nfs.cpp.o" "gcc" "src/nf/CMakeFiles/dejavu_nf.dir/nfs.cpp.o.d"
  "/root/repo/src/nf/parser_lib.cpp" "src/nf/CMakeFiles/dejavu_nf.dir/parser_lib.cpp.o" "gcc" "src/nf/CMakeFiles/dejavu_nf.dir/parser_lib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4ir/CMakeFiles/dejavu_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dejavu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/dejavu_sfc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
