file(REMOVE_RECURSE
  "CMakeFiles/dejavu_nf.dir/nfs.cpp.o"
  "CMakeFiles/dejavu_nf.dir/nfs.cpp.o.d"
  "CMakeFiles/dejavu_nf.dir/parser_lib.cpp.o"
  "CMakeFiles/dejavu_nf.dir/parser_lib.cpp.o.d"
  "libdejavu_nf.a"
  "libdejavu_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
