file(REMOVE_RECURSE
  "libdejavu_merge.a"
)
