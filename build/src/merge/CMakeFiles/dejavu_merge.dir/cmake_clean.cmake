file(REMOVE_RECURSE
  "CMakeFiles/dejavu_merge.dir/compose.cpp.o"
  "CMakeFiles/dejavu_merge.dir/compose.cpp.o.d"
  "CMakeFiles/dejavu_merge.dir/framework.cpp.o"
  "CMakeFiles/dejavu_merge.dir/framework.cpp.o.d"
  "CMakeFiles/dejavu_merge.dir/parser_merge.cpp.o"
  "CMakeFiles/dejavu_merge.dir/parser_merge.cpp.o.d"
  "libdejavu_merge.a"
  "libdejavu_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
