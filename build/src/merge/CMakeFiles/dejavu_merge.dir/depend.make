# Empty dependencies file for dejavu_merge.
# This may be replaced when dependencies are built.
