file(REMOVE_RECURSE
  "CMakeFiles/dejavu_net.dir/addr.cpp.o"
  "CMakeFiles/dejavu_net.dir/addr.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/bytes.cpp.o"
  "CMakeFiles/dejavu_net.dir/bytes.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/checksum.cpp.o"
  "CMakeFiles/dejavu_net.dir/checksum.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/five_tuple.cpp.o"
  "CMakeFiles/dejavu_net.dir/five_tuple.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/headers.cpp.o"
  "CMakeFiles/dejavu_net.dir/headers.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/lpm.cpp.o"
  "CMakeFiles/dejavu_net.dir/lpm.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/packet.cpp.o"
  "CMakeFiles/dejavu_net.dir/packet.cpp.o.d"
  "CMakeFiles/dejavu_net.dir/tcam.cpp.o"
  "CMakeFiles/dejavu_net.dir/tcam.cpp.o.d"
  "libdejavu_net.a"
  "libdejavu_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
