# Empty compiler generated dependencies file for dejavu_net.
# This may be replaced when dependencies are built.
