file(REMOVE_RECURSE
  "libdejavu_net.a"
)
