file(REMOVE_RECURSE
  "libdejavu_compile.a"
)
