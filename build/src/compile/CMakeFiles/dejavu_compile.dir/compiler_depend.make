# Empty compiler generated dependencies file for dejavu_compile.
# This may be replaced when dependencies are built.
