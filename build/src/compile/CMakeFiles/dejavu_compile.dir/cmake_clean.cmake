file(REMOVE_RECURSE
  "CMakeFiles/dejavu_compile.dir/allocator.cpp.o"
  "CMakeFiles/dejavu_compile.dir/allocator.cpp.o.d"
  "CMakeFiles/dejavu_compile.dir/report.cpp.o"
  "CMakeFiles/dejavu_compile.dir/report.cpp.o.d"
  "libdejavu_compile.a"
  "libdejavu_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
