file(REMOVE_RECURSE
  "CMakeFiles/dejavu_sim.dir/bits.cpp.o"
  "CMakeFiles/dejavu_sim.dir/bits.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/dataplane.cpp.o"
  "CMakeFiles/dejavu_sim.dir/dataplane.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/fields.cpp.o"
  "CMakeFiles/dejavu_sim.dir/fields.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/fluid.cpp.o"
  "CMakeFiles/dejavu_sim.dir/fluid.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/latency.cpp.o"
  "CMakeFiles/dejavu_sim.dir/latency.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/parse.cpp.o"
  "CMakeFiles/dejavu_sim.dir/parse.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/queue_sim.cpp.o"
  "CMakeFiles/dejavu_sim.dir/queue_sim.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/runtime_table.cpp.o"
  "CMakeFiles/dejavu_sim.dir/runtime_table.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/throughput.cpp.o"
  "CMakeFiles/dejavu_sim.dir/throughput.cpp.o.d"
  "CMakeFiles/dejavu_sim.dir/workload.cpp.o"
  "CMakeFiles/dejavu_sim.dir/workload.cpp.o.d"
  "libdejavu_sim.a"
  "libdejavu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
