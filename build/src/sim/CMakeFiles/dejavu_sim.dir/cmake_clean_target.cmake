file(REMOVE_RECURSE
  "libdejavu_sim.a"
)
