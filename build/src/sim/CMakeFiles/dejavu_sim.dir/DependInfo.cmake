
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bits.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/bits.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/bits.cpp.o.d"
  "/root/repo/src/sim/dataplane.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/dataplane.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/dataplane.cpp.o.d"
  "/root/repo/src/sim/fields.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/fields.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/fields.cpp.o.d"
  "/root/repo/src/sim/fluid.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/fluid.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/fluid.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/latency.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/latency.cpp.o.d"
  "/root/repo/src/sim/parse.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/parse.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/parse.cpp.o.d"
  "/root/repo/src/sim/queue_sim.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/queue_sim.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/queue_sim.cpp.o.d"
  "/root/repo/src/sim/runtime_table.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/runtime_table.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/runtime_table.cpp.o.d"
  "/root/repo/src/sim/throughput.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/throughput.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/throughput.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/dejavu_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/dejavu_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4ir/CMakeFiles/dejavu_p4ir.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dejavu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/dejavu_sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/asic/CMakeFiles/dejavu_asic.dir/DependInfo.cmake"
  "/root/repo/build/src/merge/CMakeFiles/dejavu_merge.dir/DependInfo.cmake"
  "/root/repo/build/src/place/CMakeFiles/dejavu_place.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
