# Empty compiler generated dependencies file for dejavu_sim.
# This may be replaced when dependencies are built.
