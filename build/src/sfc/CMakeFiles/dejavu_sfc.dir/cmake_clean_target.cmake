file(REMOVE_RECURSE
  "libdejavu_sfc.a"
)
