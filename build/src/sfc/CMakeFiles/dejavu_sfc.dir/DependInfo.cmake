
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/chain.cpp" "src/sfc/CMakeFiles/dejavu_sfc.dir/chain.cpp.o" "gcc" "src/sfc/CMakeFiles/dejavu_sfc.dir/chain.cpp.o.d"
  "/root/repo/src/sfc/header.cpp" "src/sfc/CMakeFiles/dejavu_sfc.dir/header.cpp.o" "gcc" "src/sfc/CMakeFiles/dejavu_sfc.dir/header.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/dejavu_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
