# Empty dependencies file for dejavu_sfc.
# This may be replaced when dependencies are built.
