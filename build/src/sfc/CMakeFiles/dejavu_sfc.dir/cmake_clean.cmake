file(REMOVE_RECURSE
  "CMakeFiles/dejavu_sfc.dir/chain.cpp.o"
  "CMakeFiles/dejavu_sfc.dir/chain.cpp.o.d"
  "CMakeFiles/dejavu_sfc.dir/header.cpp.o"
  "CMakeFiles/dejavu_sfc.dir/header.cpp.o.d"
  "libdejavu_sfc.a"
  "libdejavu_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
