file(REMOVE_RECURSE
  "libdejavu_ptf.a"
)
