file(REMOVE_RECURSE
  "CMakeFiles/dejavu_ptf.dir/ptf.cpp.o"
  "CMakeFiles/dejavu_ptf.dir/ptf.cpp.o.d"
  "libdejavu_ptf.a"
  "libdejavu_ptf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_ptf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
