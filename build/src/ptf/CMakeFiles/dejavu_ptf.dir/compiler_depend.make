# Empty compiler generated dependencies file for dejavu_ptf.
# This may be replaced when dependencies are built.
