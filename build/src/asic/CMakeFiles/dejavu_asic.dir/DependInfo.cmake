
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asic/switch_config.cpp" "src/asic/CMakeFiles/dejavu_asic.dir/switch_config.cpp.o" "gcc" "src/asic/CMakeFiles/dejavu_asic.dir/switch_config.cpp.o.d"
  "/root/repo/src/asic/target.cpp" "src/asic/CMakeFiles/dejavu_asic.dir/target.cpp.o" "gcc" "src/asic/CMakeFiles/dejavu_asic.dir/target.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/p4ir/CMakeFiles/dejavu_p4ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
