file(REMOVE_RECURSE
  "libdejavu_asic.a"
)
