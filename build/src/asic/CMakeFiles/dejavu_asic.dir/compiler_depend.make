# Empty compiler generated dependencies file for dejavu_asic.
# This may be replaced when dependencies are built.
