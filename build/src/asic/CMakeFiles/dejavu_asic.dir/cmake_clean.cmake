file(REMOVE_RECURSE
  "CMakeFiles/dejavu_asic.dir/switch_config.cpp.o"
  "CMakeFiles/dejavu_asic.dir/switch_config.cpp.o.d"
  "CMakeFiles/dejavu_asic.dir/target.cpp.o"
  "CMakeFiles/dejavu_asic.dir/target.cpp.o.d"
  "libdejavu_asic.a"
  "libdejavu_asic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_asic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
