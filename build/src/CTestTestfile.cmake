# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("net")
subdirs("sfc")
subdirs("p4ir")
subdirs("asic")
subdirs("compile")
subdirs("merge")
subdirs("place")
subdirs("route")
subdirs("nf")
subdirs("sim")
subdirs("control")
subdirs("ptf")
