file(REMOVE_RECURSE
  "CMakeFiles/dejavu_cli.dir/dejavu_cli.cpp.o"
  "CMakeFiles/dejavu_cli.dir/dejavu_cli.cpp.o.d"
  "dejavu_cli"
  "dejavu_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dejavu_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
