# Empty dependencies file for dejavu_cli.
# This may be replaced when dependencies are built.
