file(REMOVE_RECURSE
  "CMakeFiles/dump_p4.dir/dump_p4.cpp.o"
  "CMakeFiles/dump_p4.dir/dump_p4.cpp.o.d"
  "dump_p4"
  "dump_p4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_p4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
