# Empty compiler generated dependencies file for dump_p4.
# This may be replaced when dependencies are built.
