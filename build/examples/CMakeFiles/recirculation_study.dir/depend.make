# Empty dependencies file for recirculation_study.
# This may be replaced when dependencies are built.
