file(REMOVE_RECURSE
  "CMakeFiles/recirculation_study.dir/recirculation_study.cpp.o"
  "CMakeFiles/recirculation_study.dir/recirculation_study.cpp.o.d"
  "recirculation_study"
  "recirculation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recirculation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
