# Empty compiler generated dependencies file for edge_cloud_sfc.
# This may be replaced when dependencies are built.
