file(REMOVE_RECURSE
  "CMakeFiles/edge_cloud_sfc.dir/edge_cloud_sfc.cpp.o"
  "CMakeFiles/edge_cloud_sfc.dir/edge_cloud_sfc.cpp.o.d"
  "edge_cloud_sfc"
  "edge_cloud_sfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_cloud_sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
