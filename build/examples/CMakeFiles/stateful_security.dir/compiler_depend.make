# Empty compiler generated dependencies file for stateful_security.
# This may be replaced when dependencies are built.
