file(REMOVE_RECURSE
  "CMakeFiles/stateful_security.dir/stateful_security.cpp.o"
  "CMakeFiles/stateful_security.dir/stateful_security.cpp.o.d"
  "stateful_security"
  "stateful_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateful_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
