# Empty compiler generated dependencies file for bench_prototype.
# This may be replaced when dependencies are built.
