file(REMOVE_RECURSE
  "CMakeFiles/bench_prototype.dir/bench_prototype.cpp.o"
  "CMakeFiles/bench_prototype.dir/bench_prototype.cpp.o.d"
  "bench_prototype"
  "bench_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
