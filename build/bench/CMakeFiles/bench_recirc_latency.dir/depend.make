# Empty dependencies file for bench_recirc_latency.
# This may be replaced when dependencies are built.
