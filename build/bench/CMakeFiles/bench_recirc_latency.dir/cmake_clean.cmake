file(REMOVE_RECURSE
  "CMakeFiles/bench_recirc_latency.dir/bench_recirc_latency.cpp.o"
  "CMakeFiles/bench_recirc_latency.dir/bench_recirc_latency.cpp.o.d"
  "bench_recirc_latency"
  "bench_recirc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recirc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
