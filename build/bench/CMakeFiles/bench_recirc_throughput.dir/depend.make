# Empty dependencies file for bench_recirc_throughput.
# This may be replaced when dependencies are built.
