file(REMOVE_RECURSE
  "CMakeFiles/bench_recirc_throughput.dir/bench_recirc_throughput.cpp.o"
  "CMakeFiles/bench_recirc_throughput.dir/bench_recirc_throughput.cpp.o.d"
  "bench_recirc_throughput"
  "bench_recirc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recirc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
